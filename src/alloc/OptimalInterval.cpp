//===- alloc/OptimalInterval.cpp - Flow-exact interval solver --------------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "alloc/OptimalInterval.h"

#include "flow/MinCostFlow.h"

#include <algorithm>

using namespace layra;

std::vector<char>
layra::selectIntervalsOptimal(const std::vector<LiveInterval> &Intervals,
                              unsigned NumRegisters, SolverWorkspace *WS) {
  std::vector<char> Keep(Intervals.size(), 0);
  if (Intervals.empty())
    return Keep;
  if (NumRegisters == 0)
    return Keep;

  // Coordinate compression over interval events.
  std::vector<unsigned> Coords;
  Coords.reserve(Intervals.size() * 2);
  for (const LiveInterval &I : Intervals) {
    assert(I.Start <= I.End && "malformed interval");
    Coords.push_back(I.Start);
    Coords.push_back(I.End + 1);
  }
  std::sort(Coords.begin(), Coords.end());
  Coords.erase(std::unique(Coords.begin(), Coords.end()), Coords.end());
  auto NodeOf = [&](unsigned Point) {
    return static_cast<unsigned>(
        std::lower_bound(Coords.begin(), Coords.end(), Point) -
        Coords.begin());
  };

  unsigned NumNodes = static_cast<unsigned>(Coords.size());
  MinCostFlow Net(NumNodes);
  // Free chain carrying idle register capacity.
  for (unsigned I = 0; I + 1 < NumNodes; ++I)
    Net.addArc(I, I + 1, NumRegisters, 0);
  // One bypass arc per interval; using it = keeping the interval.
  std::vector<unsigned> ArcOf(Intervals.size());
  for (size_t I = 0; I < Intervals.size(); ++I)
    ArcOf[I] = Net.addArc(NodeOf(Intervals[I].Start),
                          NodeOf(Intervals[I].End + 1), 1,
                          -Intervals[I].Cost);

  Net.run(0, NumNodes - 1, NumRegisters, WS);
  for (size_t I = 0; I < Intervals.size(); ++I)
    if (Net.flowOn(ArcOf[I]) > 0)
      Keep[I] = 1;
  return Keep;
}
