//===- alloc/BruteForce.h - Exhaustive oracle for tests ---------*- C++ -*-===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exhaustive enumeration over all 2^N allocations -- the ground-truth
/// oracle the test suite uses to certify the branch-and-bound solver and the
/// quasi-optimality claims on small instances.
///
//===----------------------------------------------------------------------===//

#ifndef LAYRA_ALLOC_BRUTEFORCE_H
#define LAYRA_ALLOC_BRUTEFORCE_H

#include "alloc/Allocator.h"

namespace layra {

/// Exhaustive optimal allocator.  \pre N <= 24 vertices.
class BruteForceAllocator : public Allocator {
public:
  AllocationResult allocate(const AllocationProblem &P) override;
  const char *name() const override { return "brute"; }
};

} // namespace layra

#endif // LAYRA_ALLOC_BRUTEFORCE_H
