//===- lp/Ilp.cpp - Exact 0/1 packing ILP solver ---------------------------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
//
// Implementation notes.  The search keeps a trail-based partial assignment
// (Fixed / CapLeft) with unit propagation: fixing a variable to 1 decrements
// the remaining capacity of its constraints, and a constraint that reaches
// zero capacity zero-fixes all of its still-free members.  Free variables
// therefore always have strictly positive remaining capacity in every
// constraint, so the allocate branch never needs a feasibility check.
//
// Each node solves the LP relaxation over the free variables (only rows
// that can still bind are materialised).  The bound is floor(LP) with a
// magnitude-scaled tolerance -- objective weights are integers, so any LP
// value strictly below incumbent+1 closes the node.  Every LP point is also
// rounded into a feasible incumbent (select the ~1 variables, then greedily
// add by weight), which keeps the incumbent tight even when the node budget
// expires.
//
//===----------------------------------------------------------------------===//

#include "lp/Ilp.h"

#include "core/SolverWorkspace.h"
#include "lp/Simplex.h"
#include "obs/Trace.h"
#include "support/Compiler.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace layra;

namespace {

/// Integral tolerance for LP values: errors scale with the cost magnitude
/// (spill costs reach ~1e7), so the slack does too.
Weight floorWithTolerance(double V) {
  return static_cast<Weight>(std::floor(V + 1e-6 + 1e-9 * std::abs(V)));
}

class PackingSearch {
public:
  PackingSearch(const IlpInstance &I, uint64_t &Budget, SolverWorkspace *WS)
      : I(I), Budget(Budget), WS(WS), Fixed(I.numVars(), -1),
        RowsOf(I.numVars()), CapLeft(I.Constraints.size(), 0),
        FreeInRow(I.Constraints.size(), 0) {
    for (unsigned K = 0; K < I.Constraints.size(); ++K) {
      CapLeft[K] = static_cast<int>(I.Constraints[K].Capacity);
      FreeInRow[K] = static_cast<unsigned>(I.Constraints[K].Vars.size());
      for (unsigned V : I.Constraints[K].Vars) {
        assert(V < I.numVars() && "constraint references unknown variable");
        RowsOf[V].push_back(K);
      }
    }
    Incumbent.assign(I.numVars(), 0);
  }

  void seedIncumbent(const std::vector<char> &Warm) {
    assert(Warm.size() == I.numVars() && "warm start size mismatch");
    Weight Value = 0;
    for (unsigned V = 0; V < I.numVars(); ++V)
      if (Warm[V])
        Value += I.Weights[V];
#ifndef NDEBUG
    for (const IlpConstraint &K : I.Constraints) {
      unsigned Used = 0;
      for (unsigned V : K.Vars)
        Used += Warm[V] ? 1 : 0;
      assert(Used <= K.Capacity && "warm start is infeasible");
    }
#endif
    if (Value > IncumbentValue) {
      IncumbentValue = Value;
      Incumbent = Warm;
    }
  }

  IlpResult run() {
    // Root propagation: capacity-zero constraints zero-fix their members.
    std::vector<unsigned> Trail;
    for (unsigned K = 0; K < I.Constraints.size(); ++K)
      if (CapLeft[K] == 0)
        for (unsigned V : I.Constraints[K].Vars)
          if (Fixed[V] < 0)
            fixToZero(V, Trail);

    Proven = dfs();

    IlpResult Result;
    Result.X = Incumbent;
    Result.Value = IncumbentValue;
    Result.Proven = Proven;
    Result.Nodes = Nodes;
    return Result;
  }

private:
  /// Fixes free \p V to zero (no propagation beyond bookkeeping).
  void fixToZero(unsigned V, std::vector<unsigned> &Trail) {
    assert(Fixed[V] < 0 && "variable already fixed");
    Fixed[V] = 0;
    for (unsigned K : RowsOf[V])
      --FreeInRow[K];
    Trail.push_back(V);
  }

  /// Fixes free \p V to one and propagates saturated constraints.
  void fixToOne(unsigned V, std::vector<unsigned> &Trail) {
    assert(Fixed[V] < 0 && "variable already fixed");
    Fixed[V] = 1;
    PathValue += I.Weights[V];
    Trail.push_back(V);
    for (unsigned K : RowsOf[V]) {
      --FreeInRow[K];
      assert(CapLeft[K] > 0 && "free variable in a saturated constraint");
      if (--CapLeft[K] > 0)
        continue;
      // Saturated: everything still free in K is forced out.
      for (unsigned U : I.Constraints[K].Vars)
        if (Fixed[U] < 0)
          fixToZero(U, Trail);
    }
  }

  void undo(const std::vector<unsigned> &Trail) {
    // Unwind in reverse so CapLeft asserts stay meaningful.
    for (auto It = Trail.rbegin(); It != Trail.rend(); ++It) {
      unsigned V = *It;
      if (Fixed[V] == 1) {
        PathValue -= I.Weights[V];
        for (unsigned K : RowsOf[V]) {
          ++FreeInRow[K];
          ++CapLeft[K];
        }
      } else {
        for (unsigned K : RowsOf[V])
          ++FreeInRow[K];
      }
      Fixed[V] = -1;
    }
  }

  /// Builds the LP relaxation over the free variables.  Returns the LP and
  /// the free-variable ids in LP-column order.
  LinearProgram buildRelaxation(std::vector<unsigned> &FreeVars) const {
    LinearProgram LP;
    FreeVars.clear();
    std::vector<unsigned> Column(I.numVars(), ~0u);
    for (unsigned V = 0; V < I.numVars(); ++V)
      if (Fixed[V] < 0) {
        Column[V] = LP.addVariable(static_cast<double>(I.Weights[V]),
                                   /*Lo=*/0.0, /*Hi=*/1.0);
        FreeVars.push_back(V);
      }
    for (unsigned K = 0; K < I.Constraints.size(); ++K) {
      // Rows with enough capacity for all their free members cannot bind.
      if (FreeInRow[K] <= static_cast<unsigned>(CapLeft[K]))
        continue;
      std::vector<std::pair<unsigned, double>> Terms;
      Terms.reserve(FreeInRow[K]);
      for (unsigned V : I.Constraints[K].Vars)
        if (Column[V] != ~0u)
          Terms.push_back({Column[V], 1.0});
      std::sort(Terms.begin(), Terms.end());
      LP.addRow(std::move(Terms), static_cast<double>(CapLeft[K]));
    }
    return LP;
  }

  /// Rounds an LP point into a feasible selection and updates the
  /// incumbent: take the ~1 variables, then greedily add what still fits.
  void harvestIncumbent(const std::vector<unsigned> &FreeVars,
                        const std::vector<double> &X) {
    std::vector<int> Used(I.Constraints.size(), 0);
    Weight Value = PathValue;
    std::vector<char> Selection(I.numVars());
    for (unsigned V = 0; V < I.numVars(); ++V)
      Selection[V] = Fixed[V] == 1;

    std::vector<unsigned> Leftover;
    for (unsigned Idx = 0; Idx < FreeVars.size(); ++Idx) {
      if (X[Idx] >= 1.0 - 1e-6) {
        Selection[FreeVars[Idx]] = 1;
        Value += I.Weights[FreeVars[Idx]];
        for (unsigned K : RowsOf[FreeVars[Idx]])
          ++Used[K];
      } else {
        Leftover.push_back(FreeVars[Idx]);
      }
    }
    std::sort(Leftover.begin(), Leftover.end(), [&](unsigned A, unsigned B) {
      if (I.Weights[A] != I.Weights[B])
        return I.Weights[A] > I.Weights[B];
      return A < B;
    });
    for (unsigned V : Leftover) {
      bool Fits = true;
      for (unsigned K : RowsOf[V])
        Fits &= Used[K] < CapLeft[K];
      if (!Fits)
        continue;
      Selection[V] = 1;
      Value += I.Weights[V];
      for (unsigned K : RowsOf[V])
        ++Used[K];
    }
    if (Value > IncumbentValue) {
      IncumbentValue = Value;
      Incumbent = std::move(Selection);
    }
  }

  /// Explores the current node; returns false when the node budget expired
  /// somewhere below (the incumbent is still valid, just unproven).
  bool dfs() {
    if (Budget == 0)
      return false;
    --Budget;
    ++Nodes;

    std::vector<unsigned> FreeVars;
    LinearProgram LP = buildRelaxation(FreeVars);
    if (FreeVars.empty()) {
      if (PathValue > IncumbentValue) {
        IncumbentValue = PathValue;
        for (unsigned V = 0; V < I.numVars(); ++V)
          Incumbent[V] = Fixed[V] == 1;
      }
      return true;
    }
    if (LP.Rows.empty()) {
      // Nothing binds: take every free variable.
      Weight Value = PathValue;
      for (unsigned V : FreeVars)
        Value += I.Weights[V];
      if (Value > IncumbentValue) {
        IncumbentValue = Value;
        for (unsigned V = 0; V < I.numVars(); ++V)
          Incumbent[V] = Fixed[V] == 1;
        for (unsigned V : FreeVars)
          Incumbent[V] = 1;
      }
      return true;
    }

    LpSolution Relaxed = solveLp(LP, WS);
    if (Relaxed.Status != LpStatus::Optimal) {
      // Numerical trouble: no usable bound here.  The subtree stays
      // unproven; keep whatever the incumbent already has.
      return false;
    }
    Weight UpperBound = PathValue + floorWithTolerance(Relaxed.Value);
    if (UpperBound <= IncumbentValue)
      return true; // Bound: this subtree cannot beat the incumbent.

    harvestIncumbent(FreeVars, Relaxed.X);
    if (UpperBound <= IncumbentValue)
      return true; // The rounded point already meets the bound.

    // Reduced-cost fixing: forcing a nonbasic variable off its bound costs
    // at least |reduced cost| of LP value, so any variable whose flip
    // cannot reach incumbent+1 is frozen at its bound.  Each criterion is a
    // necessary condition for *any* improving solution, so all fixings
    // apply simultaneously; a saturation cascade overriding one of them
    // merely weakens the set (still exact).  Objective weights are
    // integral, hence the floors.  The fixings are applied in place and
    // the node proceeds straight to branching -- no extra LP solve.
    std::vector<unsigned> FixTrail;
    for (unsigned Idx = 0; Idx < FreeVars.size(); ++Idx) {
      unsigned V = FreeVars[Idx];
      if (Fixed[V] >= 0)
        continue; // Fixed by an earlier cascade in this loop.
      double RC = Relaxed.ReducedCosts[Idx];
      if (Relaxed.X[Idx] <= 1e-7 && RC < 0) {
        if (PathValue + floorWithTolerance(Relaxed.Value + RC) <=
            IncumbentValue)
          fixToZero(V, FixTrail);
      } else if (Relaxed.X[Idx] >= 1.0 - 1e-7 && RC > 0) {
        if (PathValue + floorWithTolerance(Relaxed.Value - RC) <=
            IncumbentValue)
          fixToOne(V, FixTrail);
      }
    }

    // Branch on the most fractional still-free variable (ties: heavier
    // first).
    unsigned BranchVar = ~0u;
    double BestDistance = 2.0;
    for (unsigned Idx = 0; Idx < FreeVars.size(); ++Idx) {
      if (Fixed[FreeVars[Idx]] >= 0)
        continue;
      double Distance = std::abs(Relaxed.X[Idx] - 0.5);
      if (Distance > 0.5 - 1e-6)
        continue; // Integral.
      if (Distance < BestDistance - 1e-12 ||
          (Distance < BestDistance + 1e-12 && BranchVar != ~0u &&
           I.Weights[FreeVars[Idx]] > I.Weights[BranchVar])) {
        BestDistance = Distance;
        BranchVar = FreeVars[Idx];
      }
    }

    bool Complete = true;
    if (BranchVar == ~0u) {
      // Every fractional variable was just fixed (or the LP point was
      // integral, in which case the incumbent already matched the bound and
      // the node would have closed above).  Re-evaluate under the fixings.
      if (!FixTrail.empty())
        Complete = dfs();
    } else {
      {
        std::vector<unsigned> Trail;
        fixToOne(BranchVar, Trail);
        Complete &= dfs();
        undo(Trail);
      }
      {
        std::vector<unsigned> Trail;
        fixToZero(BranchVar, Trail);
        Complete &= dfs();
        undo(Trail);
      }
    }
    undo(FixTrail);
    return Complete;
  }

  const IlpInstance &I;
  uint64_t &Budget;
  SolverWorkspace *WS;

  std::vector<signed char> Fixed; // -1 free / 0 / 1.
  std::vector<std::vector<unsigned>> RowsOf;
  std::vector<int> CapLeft;
  std::vector<unsigned> FreeInRow;
  Weight PathValue = 0;

  std::vector<char> Incumbent;
  Weight IncumbentValue = 0;
  bool Proven = false;
  uint64_t Nodes = 0;
};

} // namespace

namespace {

/// Solves one already-connected instance.
IlpResult solveConnected(const IlpInstance &Instance,
                         const std::vector<char> *WarmStart,
                         uint64_t &NodeBudget, SolverWorkspace *WS) {
  PackingSearch Search(Instance, NodeBudget, WS);
  if (WarmStart)
    Search.seedIncumbent(*WarmStart);
  return Search.run();
}

} // namespace

IlpResult layra::solveBinaryPacking(const IlpInstance &Instance,
                                    const std::vector<char> *WarmStart,
                                    uint64_t &NodeBudget,
                                    SolverWorkspace *WS) {
  PhaseSpan IlpSpan(Phase::Ilp);
#ifndef NDEBUG
  for (Weight W : Instance.Weights)
    assert(W >= 0 && "packing weights must be non-negative");
#endif

  // Presolve: decompose into connected components of the constraint
  // hypergraph.  Branching decisions in one component are irrelevant to
  // every other, so solving them jointly multiplies search trees that
  // should add (disjoint odd cycles are exponential joint, linear split).
  unsigned N = Instance.numVars();
  std::vector<int> CompOfVar(N, -1);
  int NumComponents = 0;
  {
    std::vector<std::vector<unsigned>> RowsOf(N);
    for (unsigned K = 0; K < Instance.Constraints.size(); ++K)
      for (unsigned V : Instance.Constraints[K].Vars)
        RowsOf[V].push_back(K);
    std::vector<int> CompOfRow(Instance.Constraints.size(), -1);
    for (unsigned Seed = 0; Seed < N; ++Seed) {
      if (CompOfVar[Seed] != -1 || RowsOf[Seed].empty())
        continue;
      int Comp = NumComponents++;
      std::vector<unsigned> Work{Seed};
      CompOfVar[Seed] = Comp;
      while (!Work.empty()) {
        unsigned V = Work.back();
        Work.pop_back();
        for (unsigned K : RowsOf[V]) {
          if (CompOfRow[K] == Comp)
            continue;
          CompOfRow[K] = Comp;
          for (unsigned U : Instance.Constraints[K].Vars)
            if (CompOfVar[U] == -1) {
              CompOfVar[U] = Comp;
              Work.push_back(U);
            }
        }
      }
    }
  }

  if (NumComponents <= 1 &&
      std::count(CompOfVar.begin(), CompOfVar.end(), -1) == 0)
    return solveConnected(Instance, WarmStart, NodeBudget, WS);

  IlpResult Result;
  Result.X.assign(N, 0);
  Result.Proven = true;
  // Unconstrained variables are taken outright (weights are non-negative).
  for (unsigned V = 0; V < N; ++V)
    if (CompOfVar[V] == -1) {
      Result.X[V] = 1;
      Result.Value += Instance.Weights[V];
    }

  for (int Comp = 0; Comp < NumComponents; ++Comp) {
    IlpInstance Sub;
    std::vector<unsigned> Local(N, ~0u), Vars;
    for (unsigned V = 0; V < N; ++V)
      if (CompOfVar[V] == Comp) {
        Local[V] = static_cast<unsigned>(Vars.size());
        Vars.push_back(V);
        Sub.Weights.push_back(Instance.Weights[V]);
      }
    for (const IlpConstraint &K : Instance.Constraints)
      if (!K.Vars.empty() && CompOfVar[K.Vars.front()] == Comp) {
        IlpConstraint Row;
        Row.Capacity = K.Capacity;
        for (unsigned V : K.Vars)
          Row.Vars.push_back(Local[V]);
        Sub.Constraints.push_back(std::move(Row));
      }
    std::vector<char> SubWarm;
    if (WarmStart) {
      SubWarm.resize(Vars.size());
      for (unsigned I = 0; I < Vars.size(); ++I)
        SubWarm[I] = (*WarmStart)[Vars[I]];
    }
    IlpResult SubResult =
        solveConnected(Sub, WarmStart ? &SubWarm : nullptr, NodeBudget, WS);
    Result.Proven &= SubResult.Proven;
    Result.Nodes += SubResult.Nodes;
    Result.Value += SubResult.Value;
    for (unsigned I = 0; I < Vars.size(); ++I)
      Result.X[Vars[I]] = SubResult.X[I];
  }
  return Result;
}

IlpResult layra::solveBinaryPackingBudgeted(const IlpInstance &Instance,
                                            const std::vector<char> *WarmStart,
                                            uint64_t NodeBudget,
                                            SolverWorkspace *WS) {
  uint64_t Budget = NodeBudget;
  return solveBinaryPacking(Instance, WarmStart, Budget, WS);
}
