//===- lp/Simplex.cpp - Bounded-variable primal simplex --------------------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
//
// Implementation notes.  The solver works on the bound-shifted problem
// y = x - Lower (so every variable has lower bound 0) with one slack per
// row; the initial basis is the slack basis, which is feasible because the
// precondition guarantees the shifted right-hand sides are non-negative.
//
// The tableau B^-1 [A | I] is kept densely and updated by Gauss-Jordan
// pivots.  Basic-variable values are maintained incrementally (they are not
// a tableau column: with nonbasic variables sitting at either bound the
// classical RHS column would be wrong).  Entering variables are priced with
// Dantzig's rule; after a run of degenerate pivots the solver switches to
// Bland's rule, which cannot cycle, and switches back on the first real
// progress.  The objective is scaled by max|c| up front so the optimality
// tolerance is meaningful for any cost magnitude, and the reported value is
// recomputed from the primal point in unscaled space.
//
//===----------------------------------------------------------------------===//

#include "lp/Simplex.h"

#include "core/SolverWorkspace.h"
#include "obs/Trace.h"
#include "support/Compiler.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace layra;

unsigned LinearProgram::addVariable(double Obj, double Lo, double Hi) {
  assert(Lo <= Hi && "variable bounds crossed");
  unsigned Index = NumVars++;
  Objective.resize(NumVars, 0.0);
  Lower.resize(NumVars, 0.0);
  Upper.resize(NumVars, kInfinity);
  Objective[Index] = Obj;
  Lower[Index] = Lo;
  Upper[Index] = Hi;
  return Index;
}

void LinearProgram::addRow(std::vector<std::pair<unsigned, double>> Terms,
                           double Rhs) {
#ifndef NDEBUG
  for (size_t I = 0; I < Terms.size(); ++I) {
    assert(Terms[I].first < NumVars && "row references unknown variable");
    assert((I == 0 || Terms[I - 1].first < Terms[I].first) &&
           "row terms must have strictly increasing variable indices");
  }
#endif
  Rows.push_back(LpRow{std::move(Terms), Rhs});
}

namespace {

/// Where a variable currently lives.  Stored as a raw byte so the state
/// vector can live in the (type-erased) workspace pool.
enum VarState : unsigned char { Basic, AtLower, AtUpper };

/// The full-tableau solver state; see the file comment for the method.
/// Every large array is checked out of the caller's workspace: the dense
/// working matrix is by far the biggest allocation in the ILP stack, and
/// branch-and-bound re-solves relaxations with identical shapes.
class Tableau {
public:
  Tableau(const LinearProgram &LP, SolverWorkspace &WS)
      : NumStructural(LP.NumVars),
        NumRows(static_cast<unsigned>(LP.Rows.size())),
        NumColumns(NumStructural + NumRows),
        Tab(WS.acquire(WS.Lp.Tab, static_cast<size_t>(NumRows) * NumColumns,
                       0.0)),
        BasicValue(WS.acquire(WS.Lp.BasicValue, NumRows, 0.0)),
        ReducedCost(WS.acquire(WS.Lp.ReducedCost, NumColumns, 0.0)),
        ShiftedUpper(WS.acquire(WS.Lp.ShiftedUpper, NumColumns,
                                LinearProgram::kInfinity)),
        State(WS.acquire(WS.Lp.State, NumColumns,
                         static_cast<unsigned char>(AtLower))),
        BasicOfRow(WS.acquire(WS.Lp.BasicOfRow, NumRows, 0u)) {
    // Objective scaling keeps the optimality tolerance commensurate with
    // the cost magnitudes (spill costs reach ~1e7 on deep loops).
    for (unsigned J = 0; J < NumStructural; ++J)
      Scale = std::max(Scale, std::abs(LP.Objective[J]));
    if (Scale == 0.0)
      Scale = 1.0;

    for (unsigned J = 0; J < NumStructural; ++J)
      ShiftedUpper[J] = LP.Upper[J] - LP.Lower[J];
    for (unsigned R = 0; R < NumRows; ++R) {
      const LpRow &Row = LP.Rows[R];
      double Shift = 0;
      for (const auto &[Var, Coeff] : Row.Terms) {
        Tab[static_cast<size_t>(R) * NumColumns + Var] = Coeff;
        Shift += Coeff * LP.Lower[Var];
      }
      Tab[static_cast<size_t>(R) * NumColumns + NumStructural + R] = 1.0;
      BasicValue[R] = Row.Rhs - Shift;
      if (BasicValue[R] < -1e-7)
        layraFatalError("solveLp: x = Lower is infeasible (missing phase-1 "
                        "by design; see lp/Simplex.h)");
      BasicValue[R] = std::max(BasicValue[R], 0.0);
    }

    for (unsigned J = 0; J < NumStructural; ++J)
      ReducedCost[J] = LP.Objective[J] / Scale;

    for (unsigned R = 0; R < NumRows; ++R) {
      State[NumStructural + R] = VarState::Basic;
      BasicOfRow[R] = NumStructural + R;
    }
  }

  /// Runs the simplex; fills \p Out (everything except Value / X, which the
  /// caller recomputes in unscaled space).
  LpStatus run(unsigned IterationLimit, unsigned &IterationsOut) {
    unsigned Stalled = 0;
    bool Bland = false;
    for (unsigned Iter = 0; Iter < IterationLimit; ++Iter) {
      unsigned Entering = pickEntering(Bland);
      if (Entering == kNone) {
        IterationsOut = Iter;
        return LpStatus::Optimal;
      }
      double Sigma = State[Entering] == VarState::AtLower ? 1.0 : -1.0;

      // Ratio test: the first basic variable to hit a bound, or the
      // entering variable's own opposite bound.
      unsigned LeavingRow = kNone;
      bool LeavingAtUpper = false;
      double Limit = ShiftedUpper[Entering]; // Own-bound flip distance.
      for (unsigned R = 0; R < NumRows; ++R) {
        double Y = Tab[static_cast<size_t>(R) * NumColumns + Entering];
        if (std::abs(Y) <= kPivotTol)
          continue;
        double Rate = Sigma * Y; // BasicValue[R] decreases at this rate.
        double Ratio;
        bool HitsUpper;
        if (Rate > 0) {
          Ratio = BasicValue[R] / Rate;
          HitsUpper = false;
        } else {
          double UpperR = ShiftedUpper[BasicOfRow[R]];
          if (UpperR == LinearProgram::kInfinity)
            continue;
          Ratio = (UpperR - BasicValue[R]) / -Rate;
          HitsUpper = true;
        }
        Ratio = std::max(Ratio, 0.0);
        if (Ratio < Limit - kRatioTol) {
          // Strictly tighter than anything seen so far.
          Limit = Ratio;
          LeavingRow = R;
          LeavingAtUpper = HitsUpper;
        } else if (LeavingRow != kNone && Ratio <= Limit + kRatioTol) {
          // Near-tie: prefer the larger pivot magnitude for numerical
          // stability; under Bland's rule the smallest variable index.
          double OldY = std::abs(
              Tab[static_cast<size_t>(LeavingRow) * NumColumns + Entering]);
          bool Better = Bland ? BasicOfRow[R] < BasicOfRow[LeavingRow]
                              : std::abs(Y) > OldY;
          if (Better) {
            Limit = std::min(Limit, Ratio);
            LeavingRow = R;
            LeavingAtUpper = HitsUpper;
          }
        }
      }

      if (Limit == LinearProgram::kInfinity) {
        IterationsOut = Iter;
        return LpStatus::Unbounded;
      }

      // Track degeneracy; switch to Bland's anti-cycling rule on a stall.
      if (Limit <= kRatioTol) {
        if (++Stalled > kStallThreshold)
          Bland = true;
      } else {
        Stalled = 0;
        Bland = false;
      }

      if (LeavingRow == kNone) {
        boundFlip(Entering, Sigma, Limit);
        continue;
      }
      pivot(Entering, Sigma, Limit, LeavingRow, LeavingAtUpper);
    }
    IterationsOut = IterationLimit;
    return LpStatus::IterationLimit;
  }

  /// Shifted value of (structural) variable \p J in the current point.
  double shiftedValue(unsigned J) const {
    switch (State[J]) {
    case VarState::AtLower:
      return 0.0;
    case VarState::AtUpper:
      return ShiftedUpper[J];
    case VarState::Basic:
      for (unsigned R = 0; R < NumRows; ++R)
        if (BasicOfRow[R] == J)
          return BasicValue[R];
      LAYRA_UNREACHABLE("basic variable missing from basis rows");
    }
    LAYRA_UNREACHABLE("covered switch");
  }

  /// Unscaled dual multiplier of row \p R.
  double rowDual(unsigned R) const {
    return -ReducedCost[NumStructural + R] * Scale;
  }

  /// Unscaled reduced cost of structural variable \p J.
  double reducedCost(unsigned J) const { return ReducedCost[J] * Scale; }

private:
  static constexpr unsigned kNone = ~0u;
  static constexpr double kOptTol = 1e-9;
  static constexpr double kPivotTol = 1e-9;
  static constexpr double kRatioTol = 1e-9;
  static constexpr unsigned kStallThreshold = 40;

  /// Dantzig pricing (steepest reduced cost), or Bland's smallest-index
  /// rule while anti-cycling; kNone when the current point is optimal.
  unsigned pickEntering(bool Bland) const {
    unsigned Best = kNone;
    double BestScore = kOptTol;
    for (unsigned J = 0; J < NumColumns; ++J) {
      double Score;
      if (State[J] == VarState::AtLower)
        Score = ReducedCost[J];
      else if (State[J] == VarState::AtUpper)
        Score = -ReducedCost[J];
      else
        continue;
      if (Score <= (Bland ? kOptTol : BestScore))
        continue;
      Best = J;
      BestScore = Score;
      if (Bland)
        break;
    }
    return Best;
  }

  /// The entering variable travels to its opposite bound; no basis change.
  void boundFlip(unsigned Entering, double Sigma, double Distance) {
    for (unsigned R = 0; R < NumRows; ++R) {
      double Y = Tab[static_cast<size_t>(R) * NumColumns + Entering];
      if (std::abs(Y) > kPivotTol)
        BasicValue[R] =
            std::max(0.0, BasicValue[R] - Sigma * Distance * Y);
    }
    State[Entering] = State[Entering] == VarState::AtLower
                          ? VarState::AtUpper
                          : VarState::AtLower;
  }

  /// Gauss-Jordan pivot: \p Entering joins the basis in \p LeavingRow.
  void pivot(unsigned Entering, double Sigma, double Distance,
             unsigned LeavingRow, bool LeavingAtUpper) {
    for (unsigned R = 0; R < NumRows; ++R) {
      if (R == LeavingRow)
        continue;
      double Y = Tab[static_cast<size_t>(R) * NumColumns + Entering];
      if (std::abs(Y) > kPivotTol)
        BasicValue[R] =
            std::max(0.0, BasicValue[R] - Sigma * Distance * Y);
    }
    double EnteringStart =
        State[Entering] == VarState::AtLower ? 0.0 : ShiftedUpper[Entering];
    double EnteringValue = EnteringStart + Sigma * Distance;

    unsigned Leaving = BasicOfRow[LeavingRow];
    State[Leaving] = LeavingAtUpper ? VarState::AtUpper : VarState::AtLower;
    State[Entering] = VarState::Basic;
    BasicOfRow[LeavingRow] = Entering;
    BasicValue[LeavingRow] = EnteringValue;

    // Normalise the pivot row, then eliminate the entering column from the
    // other rows and the reduced-cost row.
    double *PivotRow = &Tab[static_cast<size_t>(LeavingRow) * NumColumns];
    double Pivot = PivotRow[Entering];
    assert(std::abs(Pivot) > kPivotTol && "pivot on a zero element");
    for (unsigned J = 0; J < NumColumns; ++J)
      PivotRow[J] /= Pivot;
    PivotRow[Entering] = 1.0;

    for (unsigned R = 0; R < NumRows; ++R) {
      if (R == LeavingRow)
        continue;
      double *Row = &Tab[static_cast<size_t>(R) * NumColumns];
      double Factor = Row[Entering];
      if (std::abs(Factor) <= kPivotTol) {
        Row[Entering] = 0.0;
        continue;
      }
      for (unsigned J = 0; J < NumColumns; ++J)
        Row[J] -= Factor * PivotRow[J];
      Row[Entering] = 0.0;
    }
    double Factor = ReducedCost[Entering];
    if (std::abs(Factor) > kPivotTol)
      for (unsigned J = 0; J < NumColumns; ++J)
        ReducedCost[J] -= Factor * PivotRow[J];
    ReducedCost[Entering] = 0.0;
  }

  unsigned NumStructural, NumRows, NumColumns;
  double Scale = 0.0;
  // Workspace-owned storage (checked out in the constructor).
  std::vector<double> &Tab;          // NumRows x NumColumns, row-major.
  std::vector<double> &BasicValue;   // Shifted value of each row's basic var.
  std::vector<double> &ReducedCost;  // Scaled objective row.
  std::vector<double> &ShiftedUpper; // Upper - Lower; infinity for slacks.
  std::vector<unsigned char> &State; // VarState per column.
  std::vector<unsigned> &BasicOfRow;
};

} // namespace

LpSolution layra::solveLp(const LinearProgram &LP, SolverWorkspace *WS) {
  assert(LP.Objective.size() == LP.NumVars && "objective size mismatch");
  assert(LP.Lower.size() == LP.NumVars && LP.Upper.size() == LP.NumVars &&
         "bounds size mismatch");

  PhaseSpan SimplexSpan(Phase::Simplex);
  WorkspaceOrLocal LocalScope(WS);
  WS = LocalScope.get();
  LpSolution Solution;
  Tableau T(LP, *WS);
  unsigned Columns = LP.NumVars + static_cast<unsigned>(LP.Rows.size());
  Solution.Status = T.run(/*IterationLimit=*/200 + 50 * Columns,
                          Solution.Iterations);
  if (Solution.Status != LpStatus::Optimal)
    return Solution;

  Solution.X.resize(LP.NumVars);
  for (unsigned J = 0; J < LP.NumVars; ++J) {
    double V = LP.Lower[J] + T.shiftedValue(J);
    // Clamp tiny tableau noise back into the box.
    V = std::min(std::max(V, LP.Lower[J]), LP.Upper[J]);
    Solution.X[J] = V;
    Solution.Value += LP.Objective[J] * V;
  }
  Solution.RowDuals.resize(LP.Rows.size());
  for (unsigned R = 0; R < LP.Rows.size(); ++R)
    Solution.RowDuals[R] = T.rowDual(R);
  Solution.ReducedCosts.resize(LP.NumVars);
  for (unsigned J = 0; J < LP.NumVars; ++J)
    Solution.ReducedCosts[J] = T.reducedCost(J);
  return Solution;
}
