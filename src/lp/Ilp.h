//===- lp/Ilp.h - Exact 0/1 packing ILP solver -------------------*- C++ -*-===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An exact branch-and-bound solver for 0/1 packing integer programs
///
///     maximise   sum_v Weights[v] x_v
///     subject to sum_{v in K} x_v <= Capacity_K   for every constraint K
///                x binary
///
/// which is precisely the spill-everywhere allocation model the paper's
/// "Optimal" baseline solves with CPLEX (Diouf et al. [11]): constraints
/// are the maximal cliques / program-point live sets, capacities are the
/// register count.  Bounds come from the LP relaxation (lp/Simplex.h);
/// clique-constraint matrices of SSA programs are so close to integral that
/// the warm-started search almost always proves optimality at the root.
///
/// Branching fixes the most fractional variable, allocate-branch first; a
/// rounding pass turns every LP point into a feasible incumbent, so the
/// solver improves monotonically even when the node budget runs out.
///
//===----------------------------------------------------------------------===//

#ifndef LAYRA_LP_ILP_H
#define LAYRA_LP_ILP_H

#include "graph/Graph.h" // For Weight.

#include <cstdint>
#include <vector>

namespace layra {

class SolverWorkspace;

/// One packing constraint: at most Capacity of Vars may be selected.
struct IlpConstraint {
  std::vector<unsigned> Vars;
  unsigned Capacity = 0;
};

/// A 0/1 packing instance (see file comment).
struct IlpInstance {
  /// Objective weight per variable; must be non-negative.
  std::vector<Weight> Weights;
  std::vector<IlpConstraint> Constraints;

  unsigned numVars() const { return static_cast<unsigned>(Weights.size()); }
};

/// Outcome of a solveBinaryPacking() run.
struct IlpResult {
  /// Selected variables (1 = in the packing).
  std::vector<char> X;
  /// Objective value of X.
  Weight Value = 0;
  /// True when the search proved optimality within its node budget.
  bool Proven = false;
  /// Branch-and-bound nodes expanded.
  uint64_t Nodes = 0;
};

/// Solves \p Instance to proven optimality unless \p NodeBudget runs out
/// (the budget is decremented in place so callers can share one budget
/// across subproblems).  \p WarmStart, when non-null, seeds the incumbent:
/// it must be feasible.  \p WS optionally supplies the LP-relaxation
/// scratch (the simplex tableau) every node re-solve reuses.
IlpResult solveBinaryPacking(const IlpInstance &Instance,
                             const std::vector<char> *WarmStart,
                             uint64_t &NodeBudget,
                             SolverWorkspace *WS = nullptr);

/// Convenience wrapper with a private node budget.
IlpResult solveBinaryPackingBudgeted(const IlpInstance &Instance,
                                     const std::vector<char> *WarmStart = nullptr,
                                     uint64_t NodeBudget = 1'000'000,
                                     SolverWorkspace *WS = nullptr);

} // namespace layra

#endif // LAYRA_LP_ILP_H
