//===- lp/Simplex.h - Bounded-variable primal simplex -----------*- C++ -*-===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A dense bounded-variable primal simplex solver for small linear programs
/// of the form
///
///     maximise   Obj . x
///     subject to sum_j Terms[r][j] x_j <= Rhs[r]   for every row r
///                Lower[j] <= x_j <= Upper[j]
///
/// Layra uses it to compute the LP-relaxation bounds that drive the exact
/// ILP solver behind the "Optimal" baseline (the paper evaluates against a
/// CPLEX-style ILP; lp/Ilp.h is our from-scratch equivalent).  The
/// register-allocation LPs are tiny -- a few hundred variables, clique rows
/// with 0/1 coefficients -- so a full-tableau method is both simple and more
/// than fast enough.
///
/// The solver requires x = Lower to be feasible (after shifting variables to
/// their lower bounds every right-hand side must be non-negative).  All
/// packing relaxations Layra builds satisfy this by construction, which is
/// why there is deliberately no phase-1: a violated precondition aborts
/// rather than silently mis-optimizing.
///
//===----------------------------------------------------------------------===//

#ifndef LAYRA_LP_SIMPLEX_H
#define LAYRA_LP_SIMPLEX_H

#include <limits>
#include <utility>
#include <vector>

namespace layra {

class SolverWorkspace;

/// One `<=` row of a linear program, stored sparsely.
struct LpRow {
  /// (variable index, coefficient) pairs; indices must be strictly
  /// increasing.
  std::vector<std::pair<unsigned, double>> Terms;
  /// Right-hand side of the `<=` constraint.
  double Rhs = 0;
};

/// A small dense LP, maximised by solveLp().
struct LinearProgram {
  /// Upper bound value meaning "unbounded above".
  static constexpr double kInfinity = std::numeric_limits<double>::infinity();

  unsigned NumVars = 0;
  /// Objective coefficients (maximised); size NumVars.
  std::vector<double> Objective;
  /// Per-variable bounds; Lower defaults to 0, Upper to kInfinity when the
  /// vectors are left shorter than NumVars.
  std::vector<double> Lower, Upper;
  /// The `<=` constraint rows.
  std::vector<LpRow> Rows;

  /// Appends a variable with the given objective coefficient and bounds;
  /// returns its index.
  unsigned addVariable(double Obj, double Lo = 0, double Hi = kInfinity);

  /// Appends a row `sum coeff * x <= Rhs`; Terms must use valid variable
  /// indices in strictly increasing order.
  void addRow(std::vector<std::pair<unsigned, double>> Terms, double Rhs);
};

/// Solver outcome classification.
enum class LpStatus {
  /// An optimal basic solution was found.
  Optimal,
  /// The objective is unbounded above over the feasible region.
  Unbounded,
  /// The iteration limit was hit (numerical trouble); treat the result as
  /// unusable.
  IterationLimit,
};

/// A solved LP: primal values, duals and reduced costs for verification.
struct LpSolution {
  LpStatus Status = LpStatus::IterationLimit;
  /// Objective value, recomputed exactly from X at termination.
  double Value = 0;
  /// Primal variable values; size NumVars.
  std::vector<double> X;
  /// Dual multiplier per row (non-negative at optimality of a `<=` row
  /// in a maximisation problem).
  std::vector<double> RowDuals;
  /// Reduced cost per variable: at optimality a variable strictly between
  /// its bounds has reduced cost ~0, one at its lower bound has <= 0, one at
  /// its upper bound has >= 0.
  std::vector<double> ReducedCosts;
  /// Simplex pivots performed.
  unsigned Iterations = 0;
};

/// Maximises \p LP with a bounded-variable full-tableau primal simplex.
///
/// \p WS optionally supplies the tableau storage (the dense working matrix
/// dominates the solver's allocation cost); repeated solves sharing a
/// workspace reuse it.  Results are identical with and without one.
///
/// \pre Every row satisfies its constraint at x = Lower (no phase-1; see
/// file comment).  Aborts otherwise.
LpSolution solveLp(const LinearProgram &LP, SolverWorkspace *WS = nullptr);

} // namespace layra

#endif // LAYRA_LP_SIMPLEX_H
