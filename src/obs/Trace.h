//===- obs/Trace.h - Solver phase tracing -----------------------*- C++ -*-===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Scoped-span phase tracing for the allocation pipeline.  A PhaseSpan on
/// the stack marks one solver stage; when observability is off the guard is
/// a single relaxed atomic load and a predictable branch, so instrumented
/// code is free in the common case.
///
/// Two independent consumers hang off the spans:
///
///  - TraceCollector buffers begin/end events per thread and serializes them
///    as Chrome trace format JSON ("traceEvents" with complete "X" phases),
///    loadable in chrome://tracing and Perfetto.  In deterministic mode
///    (used under --no-timing and by the metrics-quiet fuzz oracle)
///    timestamps are a global sequence counter instead of a clock, so two
///    identical runs emit byte-identical traces.
///
///  - Phase accounting feeds per-phase *self-time* totals (child spans
///    subtracted) into thread-local PhaseTotals the batch driver folds into
///    per-job phase_ms breakdowns, and inclusive per-stage duration
///    histograms ("layra.phase.<name>.ms") into the global MetricsRegistry.
///
/// Spans nest but must strictly nest per thread (RAII enforces this); the
/// collector's control surface (enable/disable/clear/toJson) must not race
/// with live spans.
///
//===----------------------------------------------------------------------===//

#ifndef LAYRA_OBS_TRACE_H
#define LAYRA_OBS_TRACE_H

#include "support/Json.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <vector>

namespace layra {

/// The solver stage taxonomy.  Order is the report/trace emission order;
/// names (phaseName) are the span names and the metric name stems.
enum class Phase : unsigned {
  Pipeline,     ///< One whole runAllocationPipeline call.
  SpillRound,   ///< One build/allocate/spill/rewrite round.
  ProblemBuild, ///< buildSsaProblem / buildGeneralProblem.
  Liveness,     ///< Dataflow liveness solve.
  SpillCosts,   ///< Use-frequency spill cost computation.
  Interference, ///< Interference graph construction.
  McsPeo,       ///< Maximum cardinality search / PEO machinery.
  CliqueTreeDp, ///< Clique-tree construction and bounded-layer DP.
  StableSet,    ///< Maximum weighted stable set on chordal graphs.
  Allocate,     ///< Whole allocateProblem dispatch.
  MinCostFlow,  ///< Successive-shortest-path min-cost flow.
  Simplex,      ///< LP relaxation solves.
  Ilp,          ///< Branch-and-bound binary packing.
  SpillRewrite, ///< Load/store rewrite of the chosen spill set.
  OperandFold,  ///< Memory-operand folding pass.
  Assign,       ///< Final color/register assignment.
};

inline constexpr unsigned kNumPhases = 16;

/// Stable lower_snake_case name of \p P ("pipeline", "mcs_peo", ...).
const char *phaseName(Phase P);

/// Per-thread accumulated phase statistics.  Ms is *self* time: a phase's
/// total minus time spent in nested child phases, so summing every phase
/// reconstructs (not double-counts) the wall time under the outermost span.
struct PhaseTotals {
  double Ms[kNumPhases] = {};
  uint64_t Count[kNumPhases] = {};
};

namespace obs {

/// Global observability switches, checked on every span with one relaxed
/// load.  Zero means every instrumentation point is a no-op.
enum : uint32_t {
  kTraceEvents = 1u << 0,     ///< Buffer spans into TraceCollector.
  kPhaseAccounting = 1u << 1, ///< Accumulate PhaseTotals + phase metrics.
};

extern std::atomic<uint32_t> Flags;

inline uint32_t activeFlags() {
  return Flags.load(std::memory_order_relaxed);
}

inline bool phaseAccountingEnabled() {
  return (activeFlags() & kPhaseAccounting) != 0;
}

/// Turns phase accounting (PhaseTotals + per-stage histograms + stage
/// counters) on or off.  Tracing is controlled by TraceCollector::enable.
void setPhaseAccounting(bool Enabled);

/// The calling thread's accumulated phase totals (monotone; the driver
/// snapshots before/after a task and works with the delta).
const PhaseTotals &threadPhaseTotals();

/// Stage counters, all no-ops unless phase accounting is on.
void addSpillRound();
void addDpStates(uint64_t Visited);

void spanBegin(Phase P, uint32_t Mode);
void spanEnd();

} // namespace obs

/// RAII scope marking one solver stage.  Constructing with observability
/// disabled costs one atomic load and a not-taken branch.
class PhaseSpan {
public:
  explicit PhaseSpan(Phase P) : Mode(obs::activeFlags()) {
    if (Mode != 0)
      obs::spanBegin(P, Mode);
  }
  ~PhaseSpan() {
    if (Mode != 0)
      obs::spanEnd();
  }
  PhaseSpan(const PhaseSpan &) = delete;
  PhaseSpan &operator=(const PhaseSpan &) = delete;

private:
  const uint32_t Mode;
};

/// Collects span events and serializes Chrome trace format JSON.
class TraceCollector {
public:
  /// One completed span.  In deterministic mode TsUs/DurUs are sequence
  /// numbers, not microseconds; nesting order is still faithful.
  struct Event {
    Phase P;
    double TsUs;
    double DurUs;
  };

  TraceCollector();
  ~TraceCollector();
  TraceCollector(const TraceCollector &) = delete;
  TraceCollector &operator=(const TraceCollector &) = delete;

  /// The process-wide collector PhaseSpan reports into.
  static TraceCollector &global();

  /// Starts buffering span events.  \p Deterministic replaces the clock
  /// with a global sequence counter (byte-identical traces across runs).
  /// Resets the time origin; previously buffered events are kept.
  void enable(bool Deterministic = false);

  /// Stops buffering (clears the trace flag).  Buffered events remain
  /// available for toJson()/writeTo() until clear().
  void disable();

  bool enabled() const;
  bool deterministic() const { return Det; }

  /// Drops all buffered events.
  void clear();

  uint64_t eventCount() const;

  /// Chrome trace document: {"traceEvents": [...], "displayTimeUnit":"ms"}.
  /// Events are complete ("ph":"X") with pid 1 and one tid per recording
  /// thread, ordered by (tid, ts).  Call only with no spans in flight.
  JsonValue toJson() const;

  /// Serializes toJson() into \p Out; false on write failure.
  bool writeTo(std::FILE *Out) const;

  // Internal span plumbing (public for obs::spanEnd).
  void append(const Event &E);
  uint64_t nextSeq() { return Seq.fetch_add(1, std::memory_order_relaxed); }
  double nowUs() const;

private:
  struct ThreadBuf;
  ThreadBuf &localBuf();

  const uint64_t Serial;
  mutable std::mutex Mutex;
  std::vector<std::unique_ptr<ThreadBuf>> Buffers;
  std::atomic<uint64_t> Seq{0};
  std::atomic<uint64_t> Generation{1};
  bool Det = false;
  std::chrono::steady_clock::time_point Epoch;
};

} // namespace layra

#endif // LAYRA_OBS_TRACE_H
