//===- obs/Metrics.h - Process-wide metrics registry ------------*- C++ -*-===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A lightweight telemetry core: named counters, gauges, and log-linear
/// latency histograms behind a process-wide registry.  The hot path is a
/// single relaxed atomic increment into a per-thread shard -- no locks, no
/// contention -- while readers merge shards under a mutex into an immutable
/// MetricsSnapshot with p50/p95/p99 readout and Prometheus text exposition.
///
/// Histogram geometry is HDR-style log-linear: durations are quantized to
/// ticks (1/1024 ms), the first 16 buckets are exact, and every power-of-two
/// octave above that is split into 16 sub-buckets, bounding relative
/// quantization error by 1/16 across the full uint64 tick range.
///
//===----------------------------------------------------------------------===//

#ifndef LAYRA_OBS_METRICS_H
#define LAYRA_OBS_METRICS_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace layra {

namespace hist {

/// Sub-buckets per octave as a power of two: 16 sub-buckets => worst-case
/// relative quantization error of 1/16.
inline constexpr unsigned kSubBits = 4;
inline constexpr unsigned kSubBuckets = 1u << kSubBits;

/// Histogram tick resolution: ~1 microsecond (1/1024 ms, so the ms<->tick
/// conversion is an exact binary scale).
inline constexpr double kTicksPerMs = 1024.0;

/// 16 exact low buckets + 16 sub-buckets for each octave [2^4, 2^64).
inline constexpr unsigned kNumBuckets =
    kSubBuckets + (64 - kSubBits) * kSubBuckets;

/// Bucket index holding \p Ticks.  Total order: every bucket covers a
/// half-open tick range [bucketLowTicks(I), bucketHighTicks(I)).
unsigned bucketIndex(uint64_t Ticks);

/// Inclusive lower tick bound of bucket \p Index.
uint64_t bucketLowTicks(unsigned Index);

/// Exclusive upper tick bound of bucket \p Index (UINT64_MAX saturated for
/// the final bucket).
uint64_t bucketHighTicks(unsigned Index);

/// Quantizes a millisecond duration to ticks (negative clamps to 0).
uint64_t msToTicks(double Ms);

inline double ticksToMs(double Ticks) { return Ticks / kTicksPerMs; }

} // namespace hist

/// Immutable merged view of one histogram: dense bucket counts plus
/// percentile readout with linear interpolation inside a bucket.
struct HistogramSnapshot {
  std::string Name;
  uint64_t Count = 0;
  uint64_t SumTicks = 0;
  /// Dense bucket counts (hist::kNumBuckets entries) -- empty when no
  /// samples were ever recorded.
  std::vector<uint64_t> Buckets;

  double sumMs() const { return hist::ticksToMs(double(SumTicks)); }
  double meanMs() const { return Count ? sumMs() / double(Count) : 0.0; }

  /// Value (in ms) at quantile \p Q in [0, 1]; 0 when empty.  Exact to
  /// within the bucket's 1/16 relative width.
  double percentile(double Q) const;

  /// Accumulates \p Other into this snapshot (same geometry assumed).
  void merge(const HistogramSnapshot &Other);
};

/// A standalone concurrent latency histogram.  record() is wait-free
/// (relaxed atomic adds); snapshot() gives a consistent-enough merged view
/// for reporting.  Server and loadgen share this type directly so their
/// latency figures are bucket-for-bucket comparable.
class Histogram {
public:
  Histogram();

  void record(double Ms) { recordTicks(hist::msToTicks(Ms)); }
  void recordTicks(uint64_t Ticks);

  HistogramSnapshot snapshot() const;
  void reset();

private:
  std::atomic<uint64_t> Buckets[hist::kNumBuckets];
  std::atomic<uint64_t> CountV;
  std::atomic<uint64_t> SumTicksV;
};

using CounterId = unsigned;
using GaugeId = unsigned;
using HistogramId = unsigned;

/// Point-in-time merged view of a whole registry, in registration order
/// (which is deterministic given a deterministic program).
struct MetricsSnapshot {
  std::vector<std::pair<std::string, uint64_t>> Counters;
  std::vector<std::pair<std::string, double>> Gauges;
  std::vector<HistogramSnapshot> Histograms;

  const uint64_t *counter(const std::string &Name) const;
  const double *gauge(const std::string &Name) const;
  const HistogramSnapshot *histogram(const std::string &Name) const;

  /// Prometheus text exposition format (metric names sanitized to
  /// [a-zA-Z0-9_:]; histograms emit cumulative _bucket/_sum/_count series).
  std::string toPrometheusText() const;

  /// Human-readable "name value" lines for metrics whose name starts with
  /// \p Prefix (empty prefix selects everything).  Histograms print count
  /// and p50/p95/p99.
  std::string toText(const std::string &Prefix = std::string()) const;
};

/// Registry of named metrics with per-thread sharded collection.  Metric
/// registration (counter()/gauge()/histogram()) takes a mutex and returns a
/// stable dense id; the write paths add()/record() touch only the calling
/// thread's shard.  Capacities are fixed so shard cells can be flat atomic
/// arrays; exceeding a cap is a fatal configuration error, not a silent
/// drop.
class MetricsRegistry {
public:
  static constexpr unsigned kMaxCounters = 256;
  static constexpr unsigned kMaxGauges = 64;
  static constexpr unsigned kMaxHistograms = 64;

  MetricsRegistry();
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry &) = delete;
  MetricsRegistry &operator=(const MetricsRegistry &) = delete;

  /// The process-wide registry every instrumented subsystem reports into.
  static MetricsRegistry &global();

  /// Register-or-lookup by name; same name always returns the same id.
  CounterId counter(const std::string &Name);
  GaugeId gauge(const std::string &Name);
  HistogramId histogram(const std::string &Name);

  /// Hot paths: unsynchronized (relaxed) updates into this thread's shard.
  /// Counter arithmetic is modulo 2^64 -- overflow wraps, never traps.
  void add(CounterId Id, uint64_t Delta = 1);
  void record(HistogramId Id, double Ms);

  /// Gauges are set rarely (end of a run); a mutex keeps them simple.
  void set(GaugeId Id, double Value);

  /// Merged view of all shards.
  MetricsSnapshot snapshot() const;

  /// Zeroes every cell in place (shards stay valid for cached writers).
  void reset();

private:
  struct Shard;
  Shard &localShard();

  /// Process-unique serial: guards thread-local shard caches against a
  /// destroyed-and-reallocated registry at the same address.
  const uint64_t Serial;

  mutable std::mutex Mutex;
  std::vector<std::string> CounterNames;
  std::vector<std::string> GaugeNames;
  std::vector<std::string> HistogramNames;
  std::vector<double> GaugeValues;
  std::vector<std::unique_ptr<Shard>> Shards;
};

} // namespace layra

#endif // LAYRA_OBS_METRICS_H
