#include "obs/EventLog.h"

#include "support/Json.h"

#include <cmath>
#include <cstdio>
#include <cstring>

#include <unistd.h>

using namespace layra;
using namespace layra::obs;

const char *layra::obs::eventKindName(EventKind K) {
  switch (K) {
  case EventKind::RequestStart:
    return "request_start";
  case EventKind::RequestEnd:
    return "request_end";
  case EventKind::SlowRequest:
    return "slow_request";
  case EventKind::QueueSaturated:
    return "queue_saturated";
  case EventKind::CachePressure:
    return "cache_pressure";
  case EventKind::Reject:
    return "reject";
  case EventKind::DrainBegin:
    return "drain_begin";
  case EventKind::DrainEnd:
    return "drain_end";
  case EventKind::Dump:
    return "dump";
  case EventKind::Fatal:
    return "fatal";
  }
  return "unknown";
}

namespace {

/// Truncating copy into a fixed char field; always NUL-terminates.
template <std::size_t N> void copyBounded(char (&Dst)[N], const char *Src) {
  if (!Src) {
    Dst[0] = '\0';
    return;
  }
  std::size_t Len = std::strlen(Src);
  if (Len >= N)
    Len = N - 1;
  std::memcpy(Dst, Src, Len);
  Dst[Len] = '\0';
}

std::size_t roundUpPow2(std::size_t V) {
  std::size_t P = 2;
  while (P < V)
    P <<= 1;
  return P;
}

/// Millisecond values carry microsecond precision in dumps; anything
/// finer is noise that bloats the JSON.
double roundMs(double Ms) { return std::round(Ms * 1e3) / 1e3; }

} // namespace

/// Seqlock discipline: Stamp is 0 for never-written, 2*Seq+1 while the
/// event for sequence Seq is being filled in, 2*Seq+2 once published.
/// A reader that observes the same published stamp before and after
/// copying the payload has a consistent event; any other interleaving
/// is detected and the slot skipped.
struct EventLog::Slot {
  std::atomic<uint64_t> Stamp{0};
  Event E;
};

EventLog::EventLog(std::size_t Capacity)
    : Slots(new Slot[roundUpPow2(Capacity)]),
      Mask(roundUpPow2(Capacity) - 1),
      Epoch(std::chrono::steady_clock::now()) {}

EventLog::~EventLog() = default;

EventLog &EventLog::global() {
  static EventLog Log;
  return Log;
}

double EventLog::sinceEpochMs() const {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - Epoch)
      .count();
}

void EventLog::record(EventKind K, double Value, const char *Trace,
                      const char *Detail) {
  if (!enabled())
    return;
  uint64_t Seq = Next.fetch_add(1, std::memory_order_relaxed);
  Slot &S = Slots[Seq & Mask];
  S.Stamp.store(2 * Seq + 1, std::memory_order_release);
  S.E.Seq = Seq;
  S.E.TsMs = sinceEpochMs();
  S.E.Kind = K;
  S.E.Value = Value;
  copyBounded(S.E.Trace, Trace);
  copyBounded(S.E.Detail, Detail);
  S.Stamp.store(2 * Seq + 2, std::memory_order_release);
}

std::vector<EventLog::Event> EventLog::snapshot() const {
  uint64_t End = Next.load(std::memory_order_acquire);
  std::size_t Cap = Mask + 1;
  uint64_t Begin = End > Cap ? End - Cap : 0;
  std::vector<Event> Out;
  Out.reserve(static_cast<std::size_t>(End - Begin));
  for (uint64_t Seq = Begin; Seq < End; ++Seq) {
    const Slot &S = Slots[Seq & Mask];
    uint64_t Before = S.Stamp.load(std::memory_order_acquire);
    if (Before != 2 * Seq + 2)
      continue; // mid-write, or already lapped by a newer event
    Event Copy = S.E;
    std::atomic_thread_fence(std::memory_order_acquire);
    if (S.Stamp.load(std::memory_order_relaxed) != Before)
      continue; // torn: a writer reclaimed the slot during the copy
    Out.push_back(Copy);
  }
  return Out;
}

std::string EventLog::toJsonLines() const {
  std::string Out;
  for (const Event &E : snapshot()) {
    JsonValue Doc = JsonValue::object();
    Doc.set("seq", static_cast<unsigned long long>(E.Seq));
    Doc.set("ts_ms", roundMs(E.TsMs));
    Doc.set("event", std::string(eventKindName(E.Kind)));
    Doc.set("value", roundMs(E.Value));
    if (E.Trace[0] != '\0')
      Doc.set("trace", std::string(E.Trace));
    if (E.Detail[0] != '\0')
      Doc.set("detail", std::string(E.Detail));
    Out += Doc.dump(0);
    Out += '\n';
  }
  return Out;
}

void EventLog::reset() {
  std::size_t Cap = Mask + 1;
  for (std::size_t I = 0; I < Cap; ++I) {
    Slots[I].Stamp.store(0, std::memory_order_relaxed);
    Slots[I].E = Event();
  }
  Next.store(0, std::memory_order_relaxed);
  Epoch = std::chrono::steady_clock::now();
}

bool layra::obs::writeFileAtomically(const std::string &Path,
                                     const std::string &Text,
                                     std::string *Error) {
  // The temp file must live on the same filesystem as the target for
  // rename(2) to be atomic; a sibling path guarantees that.  The pid
  // suffix keeps concurrent processes dumping to the same target from
  // trampling each other's scratch file.
  std::string Tmp = Path + ".tmp." + std::to_string(::getpid());
  std::FILE *Out = std::fopen(Tmp.c_str(), "w");
  if (!Out) {
    if (Error)
      *Error = "cannot open " + Tmp + " for writing";
    return false;
  }
  bool Ok =
      Text.empty() || std::fwrite(Text.data(), 1, Text.size(), Out) == Text.size();
  if (std::fclose(Out) != 0)
    Ok = false;
  if (!Ok) {
    std::remove(Tmp.c_str());
    if (Error)
      *Error = "short write to " + Tmp;
    return false;
  }
  if (std::rename(Tmp.c_str(), Path.c_str()) != 0) {
    std::remove(Tmp.c_str());
    if (Error)
      *Error = "cannot rename " + Tmp + " to " + Path;
    return false;
  }
  return true;
}
