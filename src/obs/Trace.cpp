//===- obs/Trace.cpp - Solver phase tracing -------------------------------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "obs/Trace.h"

#include "obs/Metrics.h"

#include <algorithm>
#include <array>
#include <cmath>

namespace layra {

static const char *const PhaseNames[kNumPhases] = {
    "pipeline",     "spill_round",  "problem_build", "liveness",
    "spill_costs",  "interference", "mcs_peo",       "clique_tree_dp",
    "stable_set",   "allocate",     "min_cost_flow", "simplex",
    "ilp",          "spill_rewrite", "operand_fold", "assign",
};

const char *phaseName(Phase P) { return PhaseNames[unsigned(P)]; }

namespace obs {

std::atomic<uint32_t> Flags{0};

void setPhaseAccounting(bool Enabled) {
  if (Enabled)
    Flags.fetch_or(kPhaseAccounting, std::memory_order_relaxed);
  else
    Flags.fetch_and(~uint32_t(kPhaseAccounting), std::memory_order_relaxed);
}

namespace {

using Clock = std::chrono::steady_clock;

/// One live span on this thread's stack.
struct ActiveSpan {
  Phase P;
  uint32_t Mode;
  Clock::time_point Start;
  uint64_t SeqStart = 0;
  /// Inclusive milliseconds spent in already-finished child spans; the
  /// parent's self time is its total minus this.
  double ChildMs = 0;
};

thread_local std::vector<ActiveSpan> SpanStack;
thread_local PhaseTotals ThreadTotals;

/// Per-stage inclusive-duration histograms, registered once in the global
/// registry (thread-safe static initialization).
HistogramId phaseHistId(Phase P) {
  static const std::array<HistogramId, kNumPhases> Ids = [] {
    std::array<HistogramId, kNumPhases> A{};
    for (unsigned I = 0; I < kNumPhases; ++I)
      A[I] = MetricsRegistry::global().histogram(
          std::string("layra.phase.") + PhaseNames[I] + ".ms");
    return A;
  }();
  return Ids[unsigned(P)];
}

} // namespace

const PhaseTotals &threadPhaseTotals() { return ThreadTotals; }

void addSpillRound() {
  if (!phaseAccountingEnabled())
    return;
  static const CounterId Id =
      MetricsRegistry::global().counter("layra.pipeline.spill_rounds");
  MetricsRegistry::global().add(Id);
}

void addDpStates(uint64_t Visited) {
  if (!phaseAccountingEnabled())
    return;
  static const CounterId Id =
      MetricsRegistry::global().counter("layra.dp.states_visited");
  MetricsRegistry::global().add(Id, Visited);
}

void spanBegin(Phase P, uint32_t Mode) {
  TraceCollector &TC = TraceCollector::global();
  ActiveSpan S;
  S.P = P;
  S.Mode = Mode;
  const bool DetTrace = (Mode & kTraceEvents) && TC.deterministic();
  // Phase accounting always wants real durations; a deterministic trace
  // never consults the clock.
  if ((Mode & kPhaseAccounting) || ((Mode & kTraceEvents) && !DetTrace))
    S.Start = Clock::now();
  if (DetTrace)
    S.SeqStart = TC.nextSeq();
  SpanStack.push_back(S);
}

void spanEnd() {
  ActiveSpan S = SpanStack.back();
  SpanStack.pop_back();
  TraceCollector &TC = TraceCollector::global();
  const bool DetTrace = (S.Mode & kTraceEvents) && TC.deterministic();
  double DurMs = 0;
  if ((S.Mode & kPhaseAccounting) || ((S.Mode & kTraceEvents) && !DetTrace))
    DurMs = std::chrono::duration<double, std::milli>(Clock::now() - S.Start)
                .count();
  if (S.Mode & kTraceEvents) {
    TraceCollector::Event E;
    E.P = S.P;
    if (DetTrace) {
      uint64_t SeqEnd = TC.nextSeq();
      E.TsUs = double(S.SeqStart);
      E.DurUs = double(SeqEnd - S.SeqStart);
    } else {
      E.TsUs = TC.nowUs() - DurMs * 1000.0;
      E.DurUs = DurMs * 1000.0;
    }
    TC.append(E);
  }
  if (S.Mode & kPhaseAccounting) {
    unsigned I = unsigned(S.P);
    double SelfMs = DurMs - S.ChildMs;
    if (SelfMs < 0)
      SelfMs = 0;
    ThreadTotals.Ms[I] += SelfMs;
    ThreadTotals.Count[I] += 1;
    if (!SpanStack.empty())
      SpanStack.back().ChildMs += DurMs;
    MetricsRegistry::global().record(phaseHistId(S.P), DurMs);
  }
}

} // namespace obs

//===----------------------------------------------------------------------===//
// TraceCollector
//===----------------------------------------------------------------------===//

/// Soft per-thread cap: a runaway trace degrades to dropped-event counting
/// instead of unbounded memory growth.
static constexpr size_t kMaxEventsPerThread = size_t(1) << 20;

struct TraceCollector::ThreadBuf {
  unsigned Tid;
  std::vector<Event> Events;
  uint64_t Dropped = 0;
};

static std::atomic<uint64_t> NextCollectorSerial{1};

TraceCollector::TraceCollector()
    : Serial(NextCollectorSerial.fetch_add(1, std::memory_order_relaxed)),
      Epoch(std::chrono::steady_clock::now()) {}

TraceCollector::~TraceCollector() = default;

TraceCollector &TraceCollector::global() {
  static TraceCollector G;
  return G;
}

void TraceCollector::enable(bool Deterministic) {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Det = Deterministic;
    Epoch = std::chrono::steady_clock::now();
  }
  obs::Flags.fetch_or(obs::kTraceEvents, std::memory_order_relaxed);
}

void TraceCollector::disable() {
  obs::Flags.fetch_and(~uint32_t(obs::kTraceEvents),
                       std::memory_order_relaxed);
}

bool TraceCollector::enabled() const {
  return (obs::activeFlags() & obs::kTraceEvents) != 0;
}

void TraceCollector::clear() {
  std::lock_guard<std::mutex> Lock(Mutex);
  Buffers.clear();
  Generation.fetch_add(1, std::memory_order_release);
  Seq.store(0, std::memory_order_relaxed);
}

uint64_t TraceCollector::eventCount() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  uint64_t N = 0;
  for (const auto &B : Buffers)
    N += B->Events.size();
  return N;
}

double TraceCollector::nowUs() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - Epoch)
      .count();
}

TraceCollector::ThreadBuf &TraceCollector::localBuf() {
  thread_local struct {
    uint64_t Serial = 0;
    uint64_t Gen = 0;
    ThreadBuf *B = nullptr;
  } Cache;
  uint64_t Gen = Generation.load(std::memory_order_acquire);
  if (Cache.Serial != Serial || Cache.Gen != Gen) {
    std::lock_guard<std::mutex> Lock(Mutex);
    auto Buf = std::make_unique<ThreadBuf>();
    Buf->Tid = unsigned(Buffers.size());
    Buffers.push_back(std::move(Buf));
    Cache.B = Buffers.back().get();
    Cache.Serial = Serial;
    Cache.Gen = Gen;
  }
  return *Cache.B;
}

void TraceCollector::append(const Event &E) {
  ThreadBuf &B = localBuf();
  if (B.Events.size() >= kMaxEventsPerThread) {
    ++B.Dropped;
    return;
  }
  B.Events.push_back(E);
}

/// Rounds a real-clock microsecond value to 3 decimals so serialized
/// timestamps stay compact.
static double roundUs(double Us) { return std::round(Us * 1000.0) / 1000.0; }

JsonValue TraceCollector::toJson() const {
  JsonValue Doc = JsonValue::object();
  JsonValue Events = JsonValue::array();
  std::lock_guard<std::mutex> Lock(Mutex);
  for (const auto &B : Buffers) {
    // Events append at span *end*, so children precede parents; re-sort by
    // begin timestamp (ties: longer span first => parent before child).
    std::vector<Event> Sorted = B->Events;
    std::stable_sort(Sorted.begin(), Sorted.end(),
                     [](const Event &L, const Event &R) {
                       if (L.TsUs != R.TsUs)
                         return L.TsUs < R.TsUs;
                       return L.DurUs > R.DurUs;
                     });
    for (const Event &E : Sorted) {
      JsonValue Ev = JsonValue::object();
      Ev.set("name", phaseName(E.P));
      Ev.set("cat", "layra");
      Ev.set("ph", "X");
      if (Det) {
        Ev.set("ts", JsonValue((long long)E.TsUs));
        Ev.set("dur", JsonValue((long long)E.DurUs));
      } else {
        Ev.set("ts", roundUs(E.TsUs));
        Ev.set("dur", roundUs(E.DurUs));
      }
      Ev.set("pid", 1);
      Ev.set("tid", int(B->Tid));
      Events.push(std::move(Ev));
    }
  }
  Doc.set("traceEvents", std::move(Events));
  Doc.set("displayTimeUnit", "ms");
  return Doc;
}

bool TraceCollector::writeTo(std::FILE *Out) const {
  if (!Out)
    return false;
  std::string Text = toJson().dump(0);
  Text += "\n";
  return std::fwrite(Text.data(), 1, Text.size(), Out) == Text.size();
}

} // namespace layra
