//===- obs/Metrics.cpp - Process-wide metrics registry --------------------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "obs/Metrics.h"

#include "support/Compiler.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

namespace layra {

//===----------------------------------------------------------------------===//
// Log-linear bucket geometry
//===----------------------------------------------------------------------===//

namespace hist {

static inline unsigned log2Floor(uint64_t Value) {
#if defined(__GNUC__) || defined(__clang__)
  return 63u - unsigned(__builtin_clzll(Value));
#else
  unsigned E = 0;
  while (Value >>= 1)
    ++E;
  return E;
#endif
}

unsigned bucketIndex(uint64_t Ticks) {
  if (Ticks < kSubBuckets)
    return unsigned(Ticks);
  unsigned E = log2Floor(Ticks);
  unsigned Sub = unsigned((Ticks >> (E - kSubBits)) - kSubBuckets);
  return (E - kSubBits + 1) * kSubBuckets + Sub;
}

uint64_t bucketLowTicks(unsigned Index) {
  if (Index < kSubBuckets)
    return Index;
  unsigned E = kSubBits + Index / kSubBuckets - 1;
  unsigned Sub = Index % kSubBuckets;
  return (uint64_t(1) << E) + (uint64_t(Sub) << (E - kSubBits));
}

uint64_t bucketHighTicks(unsigned Index) {
  if (Index + 1 >= kNumBuckets)
    return UINT64_MAX;
  return bucketLowTicks(Index + 1);
}

uint64_t msToTicks(double Ms) {
  if (!(Ms > 0.0))
    return 0;
  double Ticks = Ms * kTicksPerMs + 0.5;
  if (Ticks >= 18446744073709549568.0) // Largest double below 2^64.
    return UINT64_MAX;
  return uint64_t(Ticks);
}

} // namespace hist

//===----------------------------------------------------------------------===//
// HistogramSnapshot
//===----------------------------------------------------------------------===//

double HistogramSnapshot::percentile(double Q) const {
  if (Count == 0 || Buckets.empty())
    return 0.0;
  Q = std::min(1.0, std::max(0.0, Q));
  // 1-based rank of the requested order statistic.
  double Rank = Q * double(Count);
  if (Rank < 1.0)
    Rank = 1.0;
  uint64_t Before = 0;
  for (unsigned I = 0; I < Buckets.size(); ++I) {
    uint64_t Here = Buckets[I];
    if (Here == 0)
      continue;
    if (double(Before + Here) >= Rank) {
      uint64_t Lo = hist::bucketLowTicks(I);
      uint64_t Hi = hist::bucketHighTicks(I);
      if (Hi == UINT64_MAX) // Unbounded final bucket: report its floor.
        return hist::ticksToMs(double(Lo));
      double Frac = (Rank - double(Before)) / double(Here);
      return hist::ticksToMs(double(Lo) + Frac * double(Hi - Lo));
    }
    Before += Here;
  }
  // Rounding left the rank past the last populated bucket.
  for (unsigned I = unsigned(Buckets.size()); I-- > 0;)
    if (Buckets[I])
      return hist::ticksToMs(double(hist::bucketHighTicks(I) == UINT64_MAX
                                        ? hist::bucketLowTicks(I)
                                        : hist::bucketHighTicks(I)));
  return 0.0;
}

void HistogramSnapshot::merge(const HistogramSnapshot &Other) {
  Count += Other.Count;
  SumTicks += Other.SumTicks;
  if (Other.Buckets.empty())
    return;
  if (Buckets.empty())
    Buckets.assign(hist::kNumBuckets, 0);
  for (unsigned I = 0; I < hist::kNumBuckets; ++I)
    Buckets[I] += Other.Buckets[I];
}

//===----------------------------------------------------------------------===//
// Histogram
//===----------------------------------------------------------------------===//

Histogram::Histogram() : CountV(0), SumTicksV(0) {
  for (auto &B : Buckets)
    B.store(0, std::memory_order_relaxed);
}

void Histogram::recordTicks(uint64_t Ticks) {
  Buckets[hist::bucketIndex(Ticks)].fetch_add(1, std::memory_order_relaxed);
  CountV.fetch_add(1, std::memory_order_relaxed);
  SumTicksV.fetch_add(Ticks, std::memory_order_relaxed);
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot S;
  S.Count = CountV.load(std::memory_order_relaxed);
  S.SumTicks = SumTicksV.load(std::memory_order_relaxed);
  if (S.Count == 0)
    return S;
  S.Buckets.resize(hist::kNumBuckets);
  for (unsigned I = 0; I < hist::kNumBuckets; ++I)
    S.Buckets[I] = Buckets[I].load(std::memory_order_relaxed);
  return S;
}

void Histogram::reset() {
  for (auto &B : Buckets)
    B.store(0, std::memory_order_relaxed);
  CountV.store(0, std::memory_order_relaxed);
  SumTicksV.store(0, std::memory_order_relaxed);
}

//===----------------------------------------------------------------------===//
// MetricsSnapshot
//===----------------------------------------------------------------------===//

const uint64_t *MetricsSnapshot::counter(const std::string &Name) const {
  for (const auto &C : Counters)
    if (C.first == Name)
      return &C.second;
  return nullptr;
}

const double *MetricsSnapshot::gauge(const std::string &Name) const {
  for (const auto &G : Gauges)
    if (G.first == Name)
      return &G.second;
  return nullptr;
}

const HistogramSnapshot *
MetricsSnapshot::histogram(const std::string &Name) const {
  for (const auto &H : Histograms)
    if (H.Name == Name)
      return &H;
  return nullptr;
}

/// Prometheus metric names allow [a-zA-Z0-9_:] only.
static std::string sanitizeMetricName(const std::string &Name) {
  std::string Out = Name;
  for (char &C : Out) {
    bool Ok = (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') ||
              (C >= '0' && C <= '9') || C == '_' || C == ':';
    if (!Ok)
      C = '_';
  }
  return Out;
}

static void appendNumber(std::string &Out, double Value) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.9g", Value);
  Out += Buf;
}

std::string MetricsSnapshot::toPrometheusText() const {
  std::string Out;
  for (const auto &C : Counters) {
    std::string N = sanitizeMetricName(C.first);
    Out += "# TYPE " + N + " counter\n";
    Out += N + " " + std::to_string(C.second) + "\n";
  }
  for (const auto &G : Gauges) {
    std::string N = sanitizeMetricName(G.first);
    Out += "# TYPE " + N + " gauge\n";
    Out += N + " ";
    appendNumber(Out, G.second);
    Out += "\n";
  }
  for (const HistogramSnapshot &H : Histograms) {
    std::string N = sanitizeMetricName(H.Name);
    Out += "# TYPE " + N + " histogram\n";
    uint64_t Cumulative = 0;
    if (!H.Buckets.empty()) {
      for (unsigned I = 0; I < hist::kNumBuckets; ++I) {
        if (H.Buckets[I] == 0)
          continue;
        Cumulative += H.Buckets[I];
        uint64_t Hi = hist::bucketHighTicks(I);
        Out += N + "_bucket{le=\"";
        if (Hi == UINT64_MAX)
          Out += "+Inf";
        else
          appendNumber(Out, hist::ticksToMs(double(Hi)));
        Out += "\"} " + std::to_string(Cumulative) + "\n";
      }
    }
    if (Cumulative != H.Count)
      Out += N + "_bucket{le=\"+Inf\"} " + std::to_string(H.Count) + "\n";
    Out += N + "_sum ";
    appendNumber(Out, H.sumMs());
    Out += "\n" + N + "_count " + std::to_string(H.Count) + "\n";
  }
  return Out;
}

static bool startsWith(const std::string &S, const std::string &Prefix) {
  return S.size() >= Prefix.size() &&
         std::memcmp(S.data(), Prefix.data(), Prefix.size()) == 0;
}

std::string MetricsSnapshot::toText(const std::string &Prefix) const {
  std::string Out;
  for (const auto &C : Counters) {
    if (!startsWith(C.first, Prefix))
      continue;
    Out += C.first + " = " + std::to_string(C.second) + "\n";
  }
  for (const auto &G : Gauges) {
    if (!startsWith(G.first, Prefix))
      continue;
    Out += G.first + " = ";
    appendNumber(Out, G.second);
    Out += "\n";
  }
  for (const HistogramSnapshot &H : Histograms) {
    if (!startsWith(H.Name, Prefix))
      continue;
    char Buf[160];
    std::snprintf(Buf, sizeof(Buf),
                  "%s: count=%llu sum_ms=%.3f p50=%.3f p95=%.3f p99=%.3f\n",
                  H.Name.c_str(), (unsigned long long)H.Count, H.sumMs(),
                  H.percentile(0.50), H.percentile(0.95), H.percentile(0.99));
    Out += Buf;
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// MetricsRegistry
//===----------------------------------------------------------------------===//

/// One thread's private cells.  Counter cells are flat; histograms (7.8 KiB
/// of buckets each) are allocated lazily on first record from this thread.
struct MetricsRegistry::Shard {
  std::atomic<uint64_t> Counters[kMaxCounters];
  std::atomic<Histogram *> Histograms[kMaxHistograms];

  Shard() {
    for (auto &C : Counters)
      C.store(0, std::memory_order_relaxed);
    for (auto &H : Histograms)
      H.store(nullptr, std::memory_order_relaxed);
  }
  ~Shard() {
    for (auto &H : Histograms)
      delete H.load(std::memory_order_relaxed);
  }
};

static std::atomic<uint64_t> NextRegistrySerial{1};

MetricsRegistry::MetricsRegistry()
    : Serial(NextRegistrySerial.fetch_add(1, std::memory_order_relaxed)) {}

MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry &MetricsRegistry::global() {
  static MetricsRegistry G;
  return G;
}

static unsigned registerName(std::vector<std::string> &Names,
                             const std::string &Name, unsigned Cap,
                             const char *Kind) {
  for (unsigned I = 0; I < Names.size(); ++I)
    if (Names[I] == Name)
      return I;
  if (Names.size() >= Cap) {
    std::fprintf(stderr, "layra: metrics registry %s capacity (%u) exceeded "
                         "registering '%s'\n",
                 Kind, Cap, Name.c_str());
    layraFatalError("metrics registry capacity exceeded");
  }
  Names.push_back(Name);
  return unsigned(Names.size() - 1);
}

CounterId MetricsRegistry::counter(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(Mutex);
  return registerName(CounterNames, Name, kMaxCounters, "counter");
}

GaugeId MetricsRegistry::gauge(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(Mutex);
  unsigned Id = registerName(GaugeNames, Name, kMaxGauges, "gauge");
  if (Id >= GaugeValues.size())
    GaugeValues.resize(Id + 1, 0.0);
  return Id;
}

HistogramId MetricsRegistry::histogram(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(Mutex);
  return registerName(HistogramNames, Name, kMaxHistograms, "histogram");
}

MetricsRegistry::Shard &MetricsRegistry::localShard() {
  // Keyed by the registry's process-unique serial: a stale cache entry from
  // another (possibly destroyed) registry can never alias this one.
  thread_local struct {
    uint64_t Serial = 0;
    Shard *S = nullptr;
  } Cache;
  if (Cache.Serial != Serial) {
    std::lock_guard<std::mutex> Lock(Mutex);
    Shards.push_back(std::make_unique<Shard>());
    Cache.S = Shards.back().get();
    Cache.Serial = Serial;
  }
  return *Cache.S;
}

void MetricsRegistry::add(CounterId Id, uint64_t Delta) {
  localShard().Counters[Id].fetch_add(Delta, std::memory_order_relaxed);
}

void MetricsRegistry::record(HistogramId Id, double Ms) {
  Shard &S = localShard();
  Histogram *H = S.Histograms[Id].load(std::memory_order_acquire);
  if (!H) {
    Histogram *Fresh = new Histogram();
    if (S.Histograms[Id].compare_exchange_strong(H, Fresh,
                                                 std::memory_order_acq_rel))
      H = Fresh;
    else
      delete Fresh; // Another writer won (only possible via reset races).
  }
  H->record(Ms);
}

void MetricsRegistry::set(GaugeId Id, double Value) {
  std::lock_guard<std::mutex> Lock(Mutex);
  if (Id < GaugeValues.size())
    GaugeValues[Id] = Value;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot Out;
  std::lock_guard<std::mutex> Lock(Mutex);
  Out.Counters.reserve(CounterNames.size());
  for (unsigned I = 0; I < CounterNames.size(); ++I) {
    uint64_t Total = 0;
    for (const auto &S : Shards)
      Total += S->Counters[I].load(std::memory_order_relaxed);
    Out.Counters.emplace_back(CounterNames[I], Total);
  }
  Out.Gauges.reserve(GaugeNames.size());
  for (unsigned I = 0; I < GaugeNames.size(); ++I)
    Out.Gauges.emplace_back(GaugeNames[I], GaugeValues[I]);
  Out.Histograms.reserve(HistogramNames.size());
  for (unsigned I = 0; I < HistogramNames.size(); ++I) {
    HistogramSnapshot H;
    H.Name = HistogramNames[I];
    for (const auto &S : Shards)
      if (Histogram *Part = S->Histograms[I].load(std::memory_order_acquire))
        H.merge(Part->snapshot());
    Out.Histograms.push_back(std::move(H));
  }
  return Out;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> Lock(Mutex);
  for (const auto &S : Shards) {
    for (auto &C : S->Counters)
      C.store(0, std::memory_order_relaxed);
    for (auto &H : S->Histograms)
      if (Histogram *Part = H.load(std::memory_order_relaxed))
        Part->reset();
  }
  for (double &G : GaugeValues)
    G = 0.0;
}

} // namespace layra
