// Bounded, wait-free structured event log: the serve stack's flight
// recorder.  Writers (reader threads, the dispatcher, signal-driven dump
// paths) append fixed-size typed events to a power-of-two ring with a
// single fetch_add and two release stores; they never take a lock and
// never block, so recording is safe from any thread at any point in a
// request's life.  Readers reconstruct the most recent window with a
// per-slot seqlock: a slot whose stamp changed mid-copy is simply
// dropped as torn.  The ring survives a wedged dispatcher — a SIGQUIT
// or fatal-error dump walks the slots directly, no queue involved.
//
// Like the rest of src/obs/, this surface measures and never steers:
// with the log disabled, record() is a single relaxed load; enabled or
// not, no solver or protocol decision ever reads it.
#ifndef LAYRA_OBS_EVENTLOG_H
#define LAYRA_OBS_EVENTLOG_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace layra {
namespace obs {

/// Typed serve-stack events.  Names (eventKindName) are the stable
/// JSON-lines vocabulary; append new kinds at the end.
enum class EventKind : uint8_t {
  RequestStart,   ///< request dequeued for dispatch (detail = kind)
  RequestEnd,     ///< response flushed (value = service+flush ms)
  SlowRequest,    ///< request crossed the --slow-ms bound (value = ms)
  QueueSaturated, ///< enqueue found the queue full (value = capacity)
  CachePressure,  ///< driver run evicted cache entries (value = count)
  Reject,         ///< request failed validation (detail = message)
  DrainBegin,     ///< stop requested; server draining
  DrainEnd,       ///< drain complete; all threads joined
  Dump,           ///< the ring itself was dumped (detail = reason)
  Fatal,          ///< layraFatalError fired (detail = message)
};

const char *eventKindName(EventKind K);

/// Fixed-capacity multi-producer event ring.  All methods are safe to
/// call concurrently; record() is wait-free.
class EventLog {
public:
  /// Inline string payloads are truncating copies: large enough for a
  /// trace id / short diagnostic, small enough that a slot stays cheap
  /// to publish.
  static constexpr std::size_t kTraceBytes = 24;
  static constexpr std::size_t kDetailBytes = 48;
  static constexpr std::size_t kDefaultCapacity = 1024;

  struct Event {
    uint64_t Seq = 0;   ///< global sequence number (allocation order)
    double TsMs = 0;    ///< milliseconds since the log's epoch
    EventKind Kind = EventKind::RequestStart;
    double Value = 0;   ///< kind-specific magnitude (ms, count, ...)
    char Trace[kTraceBytes] = {};   ///< owning trace id ("" = none)
    char Detail[kDetailBytes] = {}; ///< kind-specific short text
  };

  /// Capacity is rounded up to a power of two (minimum 2).
  explicit EventLog(std::size_t Capacity = kDefaultCapacity);
  ~EventLog();

  EventLog(const EventLog &) = delete;
  EventLog &operator=(const EventLog &) = delete;

  /// The process-wide ring used by the serve stack.
  static EventLog &global();

  /// Recording is a no-op while disabled; flipping the switch is how
  /// `layra-serve --event-log` turns the recorder on without taxing
  /// deployments that never asked for it.
  void setEnabled(bool Enabled) {
    EnabledFlag.store(Enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return EnabledFlag.load(std::memory_order_relaxed); }

  std::size_t capacity() const { return Mask + 1; }

  /// Total events accepted since construction (monotone; events older
  /// than capacity() have been overwritten).
  uint64_t recorded() const { return Next.load(std::memory_order_relaxed); }

  /// Append one event.  Trace/Detail may be null; both are truncated to
  /// their slot fields.  Wait-free: one fetch_add plus plain stores.
  void record(EventKind K, double Value = 0, const char *Trace = nullptr,
              const char *Detail = nullptr);

  /// Copy out the surviving window, oldest first.  Slots a concurrent
  /// writer is mid-publish (or has lapped) are skipped, never blocked
  /// on; the result is always a consistent subsequence.
  std::vector<Event> snapshot() const;

  /// snapshot() serialized as one compact JSON object per line — the
  /// flight-recorder dump format.
  std::string toJsonLines() const;

  /// Drop all events and restart the clock.  NOT safe against
  /// concurrent record(); for tests and quiescent reuse only.
  void reset();

private:
  struct Slot;

  double sinceEpochMs() const;

  std::unique_ptr<Slot[]> Slots;
  std::size_t Mask;
  std::atomic<uint64_t> Next{0};
  std::atomic<bool> EnabledFlag{false};
  std::chrono::steady_clock::time_point Epoch;
};

/// Write Text to Path via a temp file in the same directory followed by
/// rename(2), so a concurrent reader sees either the old contents or
/// the new — never a torn file.  Returns false (and fills *Error when
/// given) on failure; the temp file is cleaned up.
bool writeFileAtomically(const std::string &Path, const std::string &Text,
                         std::string *Error = nullptr);

} // namespace obs
} // namespace layra

#endif // LAYRA_OBS_EVENTLOG_H
