#include "obs/RequestTrace.h"

#include <cmath>
#include <cstdio>
#include <cstring>

using namespace layra;
using namespace layra::obs;

bool layra::obs::isValidTraceId(const std::string &Id) {
  if (Id.empty() || Id.size() > 64)
    return false;
  for (char C : Id) {
    bool Ok = (C >= 'A' && C <= 'Z') || (C >= 'a' && C <= 'z') ||
              (C >= '0' && C <= '9') || C == '.' || C == '_' || C == ':' ||
              C == '-';
    if (!Ok)
      return false;
  }
  return true;
}

std::string layra::obs::makeTraceId(uint64_t Salt, uint64_t Seq) {
  // SplitMix64 finalizer over salt ^ sequence: cheap, well distributed,
  // and deterministic for a pinned salt.
  uint64_t Z = Salt ^ (Seq * 0x9e3779b97f4a7c15ULL);
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
  Z ^= Z >> 31;
  char Buf[17];
  std::snprintf(Buf, sizeof Buf, "%016llx",
                static_cast<unsigned long long>(Z));
  return std::string(Buf);
}

namespace {

/// Span times keep microsecond precision in JSON; finer digits are
/// clock noise.
double roundMs(double Ms) { return std::round(Ms * 1e3) / 1e3; }

} // namespace

void RequestTrace::begin(std::string Id,
                         std::chrono::steady_clock::time_point E) {
  TraceId = std::move(Id);
  Epoch = E;
  Spans.clear();
  JobPhases.clear();
}

double RequestTrace::sinceBeginMs() const {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - Epoch)
      .count();
}

void RequestTrace::addSpan(const char *Name, double StartMs, double DurMs) {
  Span S;
  S.Name = Name;
  S.StartMs = StartMs < 0 ? 0 : StartMs;
  S.DurMs = DurMs < 0 ? 0 : DurMs;
  Spans.push_back(std::move(S));
}

bool RequestTrace::hasSpan(const char *Name) const {
  for (const Span &S : Spans)
    if (S.Name == Name)
      return true;
  return false;
}

void RequestTrace::attachJobPhases(std::vector<PhaseTotals> Phases) {
  JobPhases = std::move(Phases);
}

JsonValue RequestTrace::toJson() const {
  JsonValue Doc = JsonValue::object();
  Doc.set("id", TraceId);
  if (ShardId >= 0)
    Doc.set("shard", ShardId);
  JsonValue SpanArr = JsonValue::array();
  for (const Span &S : Spans) {
    JsonValue E = JsonValue::object();
    E.set("name", S.Name);
    E.set("start_ms", roundMs(S.StartMs));
    E.set("dur_ms", roundMs(S.DurMs));
    SpanArr.push(std::move(E));
  }
  Doc.set("spans", std::move(SpanArr));
  if (!JobPhases.empty()) {
    JsonValue Jobs = JsonValue::array();
    for (std::size_t J = 0; J < JobPhases.size(); ++J) {
      JsonValue JobDoc = JsonValue::object();
      JobDoc.set("job", static_cast<unsigned long long>(J));
      JsonValue PhaseArr = JsonValue::array();
      for (unsigned P = 0; P < kNumPhases; ++P) {
        if (JobPhases[J].Count[P] == 0)
          continue;
        JsonValue PhaseDoc = JsonValue::object();
        PhaseDoc.set("name", std::string(phaseName(static_cast<Phase>(P))));
        PhaseDoc.set("self_ms", roundMs(JobPhases[J].Ms[P]));
        PhaseDoc.set("count",
                     static_cast<unsigned long long>(JobPhases[J].Count[P]));
        PhaseArr.push(std::move(PhaseDoc));
      }
      JobDoc.set("phases", std::move(PhaseArr));
      Jobs.push(std::move(JobDoc));
    }
    Doc.set("jobs", std::move(Jobs));
  }
  return Doc;
}

JsonValue RequestTrace::idJson() const {
  JsonValue Doc = JsonValue::object();
  Doc.set("id", TraceId);
  return Doc;
}
