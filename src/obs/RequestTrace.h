// Request-scoped span tree for the serve path.  Where PR 6's
// TraceCollector aggregates phase spans process-wide, a RequestTrace
// owns the timeline of ONE protocol request: the server stamps
// accept -> queue_wait -> dispatch -> driver -> response_flush spans
// against a single epoch (the moment the frame finished arriving), and
// the batch driver attaches per-job solver phase totals via its
// per-call sink.  The result serializes as the `trace` member echoed
// in traced responses and as the payload of slow-request log lines.
//
// A RequestTrace is single-threaded by construction — it lives on the
// dispatcher's stack for the duration of one request — so it needs no
// synchronization.
#ifndef LAYRA_OBS_REQUESTTRACE_H
#define LAYRA_OBS_REQUESTTRACE_H

#include "obs/Trace.h"
#include "support/Json.h"

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace layra {
namespace obs {

/// True when Id is usable on the wire: 1..64 characters drawn from
/// [A-Za-z0-9._:-].  Anything else is rejected at parse time so trace
/// ids can be embedded in logs and filenames without quoting games.
bool isValidTraceId(const std::string &Id);

/// Deterministic 16-hex-digit id from (Salt, Seq) via a SplitMix64
/// mix.  The server salts with its start time so ids from successive
/// runs don't collide; tests pin the salt for reproducibility.
std::string makeTraceId(uint64_t Salt, uint64_t Seq);

class RequestTrace {
public:
  struct Span {
    std::string Name;
    double StartMs = 0; ///< offset from the request epoch
    double DurMs = 0;
  };

  /// Arm the trace.  Epoch anchors every span's StartMs; the server
  /// passes the frame-arrival time so queue wait is visible.
  void begin(std::string Id,
             std::chrono::steady_clock::time_point Epoch);

  bool active() const { return !TraceId.empty(); }
  const std::string &id() const { return TraceId; }

  /// Milliseconds elapsed since begin()'s epoch.
  double sinceBeginMs() const;

  void addSpan(const char *Name, double StartMs, double DurMs);
  bool hasSpan(const char *Name) const;
  const std::vector<Span> &spans() const { return Spans; }

  /// Adopt the batch driver's per-call phase sink: one PhaseTotals per
  /// job, already net of cache hits and batch duplicates.
  void attachJobPhases(std::vector<PhaseTotals> Phases);
  const std::vector<PhaseTotals> &jobPhases() const { return JobPhases; }

  /// Whether the client asked for the span tree in its response (the
  /// request carried a `trace` field).  Server-internal traces — armed
  /// only for the slow log or the event ring — leave this false so
  /// response bytes stay untouched.
  bool Echo = false;

  /// Epoch offset where the dispatch span opened; the server stamps it
  /// at dequeue and the handler closes the span once it knows where
  /// dispatch work ends (driver start, or response build for
  /// ping/stats).
  double DispatchStartMs = 0;

  /// Shard that executed the request (sharded serving core); negative
  /// means "not shard-routed" (ping/stats/parse errors handled on the IO
  /// loop) and the tag is omitted from toJson().
  int ShardId = -1;

  /// Full span tree: {"id", "spans": [...], "jobs": [...]}.  Phases
  /// with zero hits are omitted per job.
  JsonValue toJson() const;

  /// Minimal echo for responses that carry no span tree (pong, stats,
  /// errors): {"id": ...}.
  JsonValue idJson() const;

private:
  std::string TraceId;
  std::chrono::steady_clock::time_point Epoch;
  std::vector<Span> Spans;
  std::vector<PhaseTotals> JobPhases;
};

} // namespace obs
} // namespace layra

#endif // LAYRA_OBS_REQUESTTRACE_H
