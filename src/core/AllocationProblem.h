//===- core/AllocationProblem.h - Spill-everywhere instances ----*- C++ -*-===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The decoupled spill-everywhere allocation problem (paper §2): given an
/// interference graph with spill-cost weights and per-class register
/// budgets, choose the maximum-weight set of variables to *keep in
/// registers* such that no more than the class budget of them are
/// simultaneously live anywhere.  "Simultaneously live" is captured by
/// pressure constraints -- (class, budget, members) triples: the maximal
/// cliques for chordal (SSA) instances, the per-program-point live sets for
/// general instances.  Values of different register classes never share a
/// constraint (they cannot compete for a register), which is what makes the
/// multi-class problem decompose exactly into independent per-class
/// subproblems (Bouchez et al.: the structure is per pressure constraint).
///
/// Single-class instances -- everything the paper evaluates -- are the
/// special case Budgets == {R} with every constraint owned by class 0; all
/// solvers treat that case exactly as the historical scalar formulation.
///
//===----------------------------------------------------------------------===//

#ifndef LAYRA_CORE_ALLOCATIONPROBLEM_H
#define LAYRA_CORE_ALLOCATIONPROBLEM_H

#include "graph/Chordal.h"
#include "graph/Graph.h"
#include "ir/LiveIntervals.h"
#include "ir/Target.h"

#include <memory>
#include <optional>
#include <vector>

namespace layra {

class SolverWorkspace;

/// One pressure constraint: at most \p Budget of \p Members may stay in
/// registers (all members belong to register class \p Class).
struct PressureConstraint {
  std::vector<VertexId> Members;
  RegClassId Class = 0;
  unsigned Budget = 0;

  bool operator==(const PressureConstraint &Other) const {
    return Class == Other.Class && Budget == Other.Budget &&
           Members == Other.Members;
  }
  bool operator!=(const PressureConstraint &Other) const {
    return !(*this == Other);
  }
};

/// One spill-everywhere instance.
struct AllocationProblem {
  /// Interference graph; vertex weights are spill costs.  Shared and
  /// immutable: withBudgets() re-budgets an instance for a register sweep
  /// without copying the graph (the constraint structure and the graph are
  /// budget-independent).
  std::shared_ptr<const Graph> G;
  /// Register budget per class; Budgets[0] is the default class.  Size 1
  /// for single-class instances.
  std::vector<unsigned> Budgets;
  /// Register class of each vertex (sized numVertices; all 0 on
  /// single-class instances).
  std::vector<RegClassId> ClassOf;
  /// Pressure constraints; every vertex appears in at least one.  For
  /// chordal instances the Members lists are exactly the maximal cliques
  /// of G (mirrored in Cliques.Cliques, same order).
  std::vector<PressureConstraint> Constraints;
  /// True when G is chordal and the constraints are its maximal cliques.
  bool Chordal = false;
  /// Perfect elimination order (chordal instances only).
  EliminationOrder Peo;
  /// Clique bookkeeping (chordal instances only): Cliques.Cliques mirrors
  /// Constraints[i].Members; CliquesOf supports the fixed-point allocator.
  CliqueCover Cliques;
  /// Flattened live intervals (instances derived from a function); linear
  /// scan allocators require these.
  std::optional<LiveIntervalTable> Intervals;

  const Graph &graph() const { return *G; }

  unsigned numClasses() const {
    return static_cast<unsigned>(Budgets.size());
  }
  bool multiClass() const { return Budgets.size() > 1; }

  /// Register class of vertex \p V.
  RegClassId classOf(VertexId V) const {
    return V < ClassOf.size() ? ClassOf[V] : 0;
  }

  /// Budget of class \p C.
  unsigned budgetOf(RegClassId C) const {
    assert(C < Budgets.size() && "class id out of range");
    return Budgets[C];
  }

  /// The single budget of a single-class instance.  Solvers built around
  /// one uniform register file (the layered family, linear scan, graph
  /// coloring) call this; multi-class instances reach them only through
  /// the per-class decomposition in Allocator::allocateProblem.
  unsigned uniformBudget() const {
    assert(!multiClass() && "uniform-budget solver fed a multi-class "
                            "instance; route through allocateProblem");
    return Budgets.empty() ? 0 : Budgets[0];
  }

  /// Builds a single-class chordal instance from a chordal graph: computes
  /// the PEO (MCS) and the maximal cliques.  Aborts if \p G is not
  /// chordal.  \p WS optionally supplies the chordal-machinery scratch;
  /// the built problem never aliases workspace memory.
  static AllocationProblem fromChordalGraph(Graph G, unsigned NumRegisters,
                                            SolverWorkspace *WS = nullptr);

  /// Multi-class variant: \p ClassOf tags each vertex, \p Budgets holds
  /// one budget per class.  Cross-class vertices must not be adjacent in
  /// \p G (interference construction guarantees it); every maximal clique
  /// then lies within one class and becomes that class's constraint.
  static AllocationProblem fromChordalGraph(Graph G,
                                            std::vector<unsigned> Budgets,
                                            std::vector<RegClassId> ClassOf,
                                            SolverWorkspace *WS = nullptr);

  /// Builds a single-class general instance: \p PointLiveSets become the
  /// constraints (vertices missing from every set get a singleton
  /// constraint so the problem covers them).
  static AllocationProblem
  fromGeneralGraph(Graph G, unsigned NumRegisters,
                   std::vector<std::vector<VertexId>> PointLiveSets);

  /// Multi-class variant: each point live set is split per class before it
  /// becomes constraints (values of different files never pressure each
  /// other), with per-class deduplication.
  static AllocationProblem
  fromGeneralGraph(Graph G, std::vector<unsigned> Budgets,
                   std::vector<RegClassId> ClassOf,
                   std::vector<std::vector<VertexId>> PointLiveSets);

  /// MaxLive of the instance: the size of the largest constraint (largest
  /// per-class pressure on multi-class instances).
  unsigned maxLive() const;

  /// True when every constraint fits its budget -- the "no spilling
  /// needed" test, per class.
  bool fitsBudgets() const;

  /// Returns a copy of this problem with different per-class budgets.
  /// The graph is *shared*, not copied: constraint structure is
  /// budget-independent, so a register sweep re-budgets one immutable
  /// instance (the historical withRegisters copied the full graph per
  /// sweep point).
  AllocationProblem withBudgets(std::vector<unsigned> NewBudgets) const;

  /// Extracts the independent single-class subproblem of class \p C.
  /// \p ToGlobal receives the local-vertex -> global-vertex map.  The
  /// subproblem owns its graph and intervals.  Classes with no vertices
  /// yield an empty problem (0 vertices).
  AllocationProblem projectClass(RegClassId C,
                                 std::vector<VertexId> &ToGlobal,
                                 SolverWorkspace *WS = nullptr) const;
};

/// Outcome of an allocator run.
struct AllocationResult {
  /// Per-vertex flag: kept in a register?
  std::vector<char> Allocated;
  /// Sum of weights of allocated vertices.
  Weight AllocatedWeight = 0;
  /// Sum of weights of spilled vertices (the paper's "allocation cost").
  Weight SpillCost = 0;
  /// For exact solvers: true when optimality was proven (search completed
  /// within its node budget).  Heuristics leave it false.
  bool Proven = false;

  /// Collects the spilled vertex ids.
  std::vector<VertexId> spilled() const;
  /// Collects the allocated vertex ids.
  std::vector<VertexId> allocated() const;

  /// Builds a result from an allocated-vertex list, computing both weights
  /// against \p G.
  static AllocationResult fromAllocatedSet(const Graph &G,
                                           const std::vector<VertexId> &Set);
  /// Builds a result from per-vertex flags.
  static AllocationResult fromFlags(const Graph &G, std::vector<char> Flags);
};

/// Checks feasibility: every constraint keeps at most its budget of
/// allocated vertices.  For chordal single-class instances this is exactly
/// R-colorability of the induced subgraph.
bool isFeasibleAllocation(const AllocationProblem &P,
                          const std::vector<char> &Allocated);

} // namespace layra

#endif // LAYRA_CORE_ALLOCATIONPROBLEM_H
