//===- core/AllocationProblem.h - Spill-everywhere instances ----*- C++ -*-===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The decoupled spill-everywhere allocation problem (paper §2): given an
/// interference graph with spill-cost weights and R registers, choose the
/// maximum-weight set of variables to *keep in registers* such that no more
/// than R of them are simultaneously live anywhere.  "Simultaneously live"
/// is captured by point constraints: the maximal cliques for chordal (SSA)
/// instances, the per-program-point live sets for general instances.
///
//===----------------------------------------------------------------------===//

#ifndef LAYRA_CORE_ALLOCATIONPROBLEM_H
#define LAYRA_CORE_ALLOCATIONPROBLEM_H

#include "graph/Chordal.h"
#include "graph/Graph.h"
#include "ir/LiveIntervals.h"

#include <optional>
#include <vector>

namespace layra {

class SolverWorkspace;

/// One spill-everywhere instance.
struct AllocationProblem {
  /// Interference graph; vertex weights are spill costs.
  Graph G;
  /// Number of machine registers.
  unsigned NumRegisters = 0;
  /// Point constraints: each lists vertices that are simultaneously live at
  /// some program point; a feasible allocation keeps at most NumRegisters of
  /// each.  For chordal instances these are exactly the maximal cliques of
  /// G.  Every vertex appears in at least one constraint.
  std::vector<std::vector<VertexId>> Constraints;
  /// True when G is chordal and Constraints are its maximal cliques.
  bool Chordal = false;
  /// Perfect elimination order (chordal instances only).
  EliminationOrder Peo;
  /// Clique bookkeeping (chordal instances only): Cliques.Cliques mirrors
  /// Constraints; CliquesOf supports the fixed-point allocator.
  CliqueCover Cliques;
  /// Flattened live intervals (instances derived from a function); linear
  /// scan allocators require these.
  std::optional<LiveIntervalTable> Intervals;

  /// Builds a chordal instance from a chordal graph: computes the PEO (MCS)
  /// and the maximal cliques.  Aborts if \p G is not chordal.  \p WS
  /// optionally supplies the chordal-machinery scratch; the built problem
  /// never aliases workspace memory.
  static AllocationProblem fromChordalGraph(Graph G, unsigned NumRegisters,
                                            SolverWorkspace *WS = nullptr);

  /// Builds a general instance: \p PointLiveSets become the constraints
  /// (vertices missing from every set get a singleton constraint so the
  /// problem covers them).
  static AllocationProblem
  fromGeneralGraph(Graph G, unsigned NumRegisters,
                   std::vector<std::vector<VertexId>> PointLiveSets);

  /// MaxLive of the instance: the size of the largest constraint.
  unsigned maxLive() const;

  /// Returns a copy of this problem with a different register count
  /// (constraint structure is R-independent, so this is cheap apart from
  /// the graph copy).
  AllocationProblem withRegisters(unsigned NewR) const;
};

/// Outcome of an allocator run.
struct AllocationResult {
  /// Per-vertex flag: kept in a register?
  std::vector<char> Allocated;
  /// Sum of weights of allocated vertices.
  Weight AllocatedWeight = 0;
  /// Sum of weights of spilled vertices (the paper's "allocation cost").
  Weight SpillCost = 0;
  /// For exact solvers: true when optimality was proven (search completed
  /// within its node budget).  Heuristics leave it false.
  bool Proven = false;

  /// Collects the spilled vertex ids.
  std::vector<VertexId> spilled() const;
  /// Collects the allocated vertex ids.
  std::vector<VertexId> allocated() const;

  /// Builds a result from an allocated-vertex list, computing both weights
  /// against \p G.
  static AllocationResult fromAllocatedSet(const Graph &G,
                                           const std::vector<VertexId> &Set);
  /// Builds a result from per-vertex flags.
  static AllocationResult fromFlags(const Graph &G, std::vector<char> Flags);
};

/// Checks feasibility: every constraint keeps at most NumRegisters allocated
/// vertices.  For chordal instances this is exactly R-colorability of the
/// induced subgraph.
bool isFeasibleAllocation(const AllocationProblem &P,
                          const std::vector<char> &Allocated);

} // namespace layra

#endif // LAYRA_CORE_ALLOCATIONPROBLEM_H
