//===- core/AllocationProblem.cpp - Spill-everywhere instances -------------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "core/AllocationProblem.h"

#include "core/SolverWorkspace.h"
#include "support/Compiler.h"

#include <algorithm>
#include <unordered_set>

using namespace layra;

AllocationProblem AllocationProblem::fromChordalGraph(Graph G,
                                                      unsigned NumRegisters,
                                                      SolverWorkspace *WS) {
  return fromChordalGraph(std::move(G), std::vector<unsigned>{NumRegisters},
                          {}, WS);
}

AllocationProblem
AllocationProblem::fromChordalGraph(Graph G, std::vector<unsigned> Budgets,
                                    std::vector<RegClassId> ClassOf,
                                    SolverWorkspace *WS) {
  assert(!Budgets.empty() && "at least one register class required");
  // Freeze point: the edge set is complete, so flatten adjacency into the
  // CSR view before the MCS/clique machinery walks it.
  G.compress();
  AllocationProblem P;
  P.Budgets = std::move(Budgets);
  P.ClassOf = std::move(ClassOf);
  P.ClassOf.resize(G.numVertices(), 0);
  P.Peo = maximumCardinalitySearch(G, WS);
  if (!isPerfectEliminationOrder(G, P.Peo, WS))
    layraFatalError("fromChordalGraph called with a non-chordal graph");
  P.Cliques = maximalCliquesChordal(G, P.Peo, WS);
  P.Constraints.reserve(P.Cliques.Cliques.size());
  for (const std::vector<VertexId> &Clique : P.Cliques.Cliques) {
    PressureConstraint C;
    C.Members = Clique;
    // Cross-class vertices are never adjacent, so a clique lies wholly in
    // one class: its first member names it.
    C.Class = Clique.empty() ? 0 : P.ClassOf[Clique.front()];
    assert(C.Class < P.Budgets.size() && "vertex class without a budget");
#ifndef NDEBUG
    for (VertexId V : Clique)
      assert(P.ClassOf[V] == C.Class &&
             "clique spans register classes; interference construction "
             "must not add cross-class edges");
#endif
    C.Budget = P.Budgets[C.Class];
    P.Constraints.push_back(std::move(C));
  }
  P.Chordal = true;
  P.G = std::make_shared<Graph>(std::move(G));
  return P;
}

AllocationProblem AllocationProblem::fromGeneralGraph(
    Graph G, unsigned NumRegisters,
    std::vector<std::vector<VertexId>> PointLiveSets) {
  return fromGeneralGraph(std::move(G), std::vector<unsigned>{NumRegisters},
                          {}, std::move(PointLiveSets));
}

AllocationProblem AllocationProblem::fromGeneralGraph(
    Graph G, std::vector<unsigned> Budgets, std::vector<RegClassId> ClassOf,
    std::vector<std::vector<VertexId>> PointLiveSets) {
  assert(!Budgets.empty() && "at least one register class required");
  // Freeze point (see fromChordalGraph).
  G.compress();
  AllocationProblem P;
  P.Budgets = std::move(Budgets);
  P.ClassOf = std::move(ClassOf);
  P.ClassOf.resize(G.numVertices(), 0);
  P.Chordal = false;

  if (!P.multiClass()) {
    for (std::vector<VertexId> &Set : PointLiveSets) {
      PressureConstraint C;
      C.Members = std::move(Set);
      C.Budget = P.Budgets[0];
      P.Constraints.push_back(std::move(C));
    }
  } else {
    // Split each point set per class -- values of different files never
    // pressure each other -- and deduplicate the per-class pieces (two
    // mixed points can share one class's slice).
    struct SliceHash {
      size_t operator()(const std::vector<VertexId> &Set) const {
        uint64_t H = 0x9e3779b97f4a7c15ULL;
        for (VertexId V : Set)
          H ^= V + 0x9e3779b97f4a7c15ULL + (H << 6) + (H >> 2);
        return static_cast<size_t>(H);
      }
    };
    std::unordered_set<std::vector<VertexId>, SliceHash> Seen;
    for (const std::vector<VertexId> &Set : PointLiveSets) {
      for (RegClassId Class = 0; Class < P.Budgets.size(); ++Class) {
        std::vector<VertexId> Slice;
        for (VertexId V : Set)
          if (P.ClassOf[V] == Class)
            Slice.push_back(V);
        if (Slice.empty() || !Seen.insert(Slice).second)
          continue;
        PressureConstraint C;
        C.Members = std::move(Slice);
        C.Class = Class;
        C.Budget = P.Budgets[Class];
        P.Constraints.push_back(std::move(C));
      }
    }
  }

  // Give uncovered vertices a singleton constraint so that "appears in some
  // constraint" holds for every vertex (solvers rely on it).
  std::vector<char> Covered(G.numVertices(), 0);
  for (const PressureConstraint &C : P.Constraints)
    for (VertexId V : C.Members) {
      assert(V < G.numVertices() && "constraint mentions unknown vertex");
      Covered[V] = 1;
    }
  for (VertexId V = 0; V < G.numVertices(); ++V)
    if (!Covered[V]) {
      PressureConstraint C;
      C.Members = {V};
      C.Class = P.ClassOf[V];
      assert(C.Class < P.Budgets.size() && "vertex class without a budget");
      C.Budget = P.Budgets[C.Class];
      P.Constraints.push_back(std::move(C));
    }

  P.G = std::make_shared<Graph>(std::move(G));
  return P;
}

unsigned AllocationProblem::maxLive() const {
  size_t Max = 0;
  for (const PressureConstraint &C : Constraints)
    Max = std::max(Max, C.Members.size());
  return static_cast<unsigned>(Max);
}

bool AllocationProblem::fitsBudgets() const {
  for (const PressureConstraint &C : Constraints)
    if (C.Members.size() > C.Budget)
      return false;
  return true;
}

AllocationProblem
AllocationProblem::withBudgets(std::vector<unsigned> NewBudgets) const {
  assert(NewBudgets.size() == Budgets.size() &&
         "withBudgets must keep the class structure");
  AllocationProblem Copy = *this; // Graph is shared, not copied.
  Copy.Budgets = std::move(NewBudgets);
  for (PressureConstraint &C : Copy.Constraints)
    C.Budget = Copy.Budgets[C.Class];
  return Copy;
}

AllocationProblem
AllocationProblem::projectClass(RegClassId Class,
                                std::vector<VertexId> &ToGlobal,
                                SolverWorkspace *WS) const {
  assert(Class < Budgets.size() && "class id out of range");
  ToGlobal.clear();
  for (VertexId V = 0; V < graph().numVertices(); ++V)
    if (classOf(V) == Class)
      ToGlobal.push_back(V);

  std::vector<VertexId> LocalOf;
  Graph Sub = graph().inducedSubgraph(ToGlobal, &LocalOf);

  AllocationProblem P;
  if (Chordal) {
    // An induced subgraph of a chordal graph is chordal; its maximal
    // cliques are exactly this class's constraints (cliques never span
    // classes), so the standard construction rebuilds them.
    P = fromChordalGraph(std::move(Sub), budgetOf(Class), WS);
  } else {
    std::vector<std::vector<VertexId>> Sets;
    for (const PressureConstraint &C : Constraints) {
      if (C.Class != Class)
        continue;
      std::vector<VertexId> Local;
      Local.reserve(C.Members.size());
      for (VertexId V : C.Members)
        Local.push_back(LocalOf[V]);
      Sets.push_back(std::move(Local));
    }
    P = fromGeneralGraph(std::move(Sub), budgetOf(Class), std::move(Sets));
  }

  if (Intervals) {
    LiveIntervalTable Table;
    Table.BlockStart = Intervals->BlockStart;
    Table.NumPoints = Intervals->NumPoints;
    for (const LiveInterval &I : Intervals->Intervals) {
      if (I.V == kNoValue || classOf(I.V) != Class)
        continue;
      LiveInterval Local = I;
      Local.V = LocalOf[I.V];
      Table.Intervals.push_back(Local);
    }
    P.Intervals = std::move(Table);
  }
  return P;
}

std::vector<VertexId> AllocationResult::spilled() const {
  std::vector<VertexId> Out;
  for (VertexId V = 0; V < Allocated.size(); ++V)
    if (!Allocated[V])
      Out.push_back(V);
  return Out;
}

std::vector<VertexId> AllocationResult::allocated() const {
  std::vector<VertexId> Out;
  for (VertexId V = 0; V < Allocated.size(); ++V)
    if (Allocated[V])
      Out.push_back(V);
  return Out;
}

AllocationResult
AllocationResult::fromAllocatedSet(const Graph &G,
                                   const std::vector<VertexId> &Set) {
  std::vector<char> Flags(G.numVertices(), 0);
  for (VertexId V : Set)
    Flags[V] = 1;
  return fromFlags(G, std::move(Flags));
}

AllocationResult AllocationResult::fromFlags(const Graph &G,
                                             std::vector<char> Flags) {
  assert(Flags.size() == G.numVertices() && "one flag per vertex required");
  AllocationResult R;
  for (VertexId V = 0; V < G.numVertices(); ++V)
    (Flags[V] ? R.AllocatedWeight : R.SpillCost) += G.weight(V);
  R.Allocated = std::move(Flags);
  return R;
}

bool layra::isFeasibleAllocation(const AllocationProblem &P,
                                 const std::vector<char> &Allocated) {
  assert(Allocated.size() == P.graph().numVertices() &&
         "flag vector size mismatch");
  for (const PressureConstraint &C : P.Constraints) {
    unsigned Kept = 0;
    for (VertexId V : C.Members)
      Kept += Allocated[V] ? 1 : 0;
    if (Kept > C.Budget)
      return false;
  }
  return true;
}
