//===- core/AllocationProblem.cpp - Spill-everywhere instances -------------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "core/AllocationProblem.h"

#include "core/SolverWorkspace.h"
#include "support/Compiler.h"

#include <algorithm>

using namespace layra;

AllocationProblem AllocationProblem::fromChordalGraph(Graph G,
                                                      unsigned NumRegisters,
                                                      SolverWorkspace *WS) {
  AllocationProblem P;
  P.NumRegisters = NumRegisters;
  P.Peo = maximumCardinalitySearch(G, WS);
  if (!isPerfectEliminationOrder(G, P.Peo, WS))
    layraFatalError("fromChordalGraph called with a non-chordal graph");
  P.Cliques = maximalCliquesChordal(G, P.Peo, WS);
  P.Constraints = P.Cliques.Cliques;
  P.Chordal = true;
  P.G = std::move(G);
  return P;
}

AllocationProblem AllocationProblem::fromGeneralGraph(
    Graph G, unsigned NumRegisters,
    std::vector<std::vector<VertexId>> PointLiveSets) {
  AllocationProblem P;
  P.NumRegisters = NumRegisters;
  P.Constraints = std::move(PointLiveSets);
  P.Chordal = false;

  // Give uncovered vertices a singleton constraint so that "appears in some
  // constraint" holds for every vertex (solvers rely on it).
  std::vector<char> Covered(G.numVertices(), 0);
  for (const auto &C : P.Constraints)
    for (VertexId V : C) {
      assert(V < G.numVertices() && "constraint mentions unknown vertex");
      Covered[V] = 1;
    }
  for (VertexId V = 0; V < G.numVertices(); ++V)
    if (!Covered[V])
      P.Constraints.push_back({V});

  P.G = std::move(G);
  return P;
}

unsigned AllocationProblem::maxLive() const {
  size_t Max = 0;
  for (const auto &C : Constraints)
    Max = std::max(Max, C.size());
  return static_cast<unsigned>(Max);
}

AllocationProblem AllocationProblem::withRegisters(unsigned NewR) const {
  AllocationProblem Copy = *this;
  Copy.NumRegisters = NewR;
  return Copy;
}

std::vector<VertexId> AllocationResult::spilled() const {
  std::vector<VertexId> Out;
  for (VertexId V = 0; V < Allocated.size(); ++V)
    if (!Allocated[V])
      Out.push_back(V);
  return Out;
}

std::vector<VertexId> AllocationResult::allocated() const {
  std::vector<VertexId> Out;
  for (VertexId V = 0; V < Allocated.size(); ++V)
    if (Allocated[V])
      Out.push_back(V);
  return Out;
}

AllocationResult
AllocationResult::fromAllocatedSet(const Graph &G,
                                   const std::vector<VertexId> &Set) {
  std::vector<char> Flags(G.numVertices(), 0);
  for (VertexId V : Set)
    Flags[V] = 1;
  return fromFlags(G, std::move(Flags));
}

AllocationResult AllocationResult::fromFlags(const Graph &G,
                                             std::vector<char> Flags) {
  assert(Flags.size() == G.numVertices() && "one flag per vertex required");
  AllocationResult R;
  for (VertexId V = 0; V < G.numVertices(); ++V)
    (Flags[V] ? R.AllocatedWeight : R.SpillCost) += G.weight(V);
  R.Allocated = std::move(Flags);
  return R;
}

bool layra::isFeasibleAllocation(const AllocationProblem &P,
                                 const std::vector<char> &Allocated) {
  assert(Allocated.size() == P.G.numVertices() && "flag vector size mismatch");
  for (const auto &C : P.Constraints) {
    unsigned Kept = 0;
    for (VertexId V : C)
      Kept += Allocated[V] ? 1 : 0;
    if (Kept > P.NumRegisters)
      return false;
  }
  return true;
}
