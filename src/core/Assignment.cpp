//===- core/Assignment.cpp - Register assignment (coloring) ----------------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "core/Assignment.h"

#include "graph/Coloring.h"

#include <algorithm>

using namespace layra;

Assignment layra::assignRegisters(const AllocationProblem &P,
                                  const std::vector<char> &Allocated) {
  assert(Allocated.size() == P.graph().numVertices() && "flag size mismatch");
  Assignment Out;
  Out.RegisterOf.assign(P.graph().numVertices(), Assignment::kNoRegister);
  Out.ClassOf.assign(P.ClassOf.begin(), P.ClassOf.end());
  Out.ClassOf.resize(P.graph().numVertices(), 0);

  // Color allocated vertices greedily in reverse elimination order.  For a
  // chordal instance P.Peo restricted to the allocated set is a PEO of the
  // induced subgraph, so the scan is optimal there; for general instances we
  // fall back to a max-degree-first order.
  std::vector<VertexId> Sequence;
  if (P.Chordal) {
    for (auto It = P.Peo.Order.rbegin(); It != P.Peo.Order.rend(); ++It)
      if (Allocated[*It])
        Sequence.push_back(*It);
  } else {
    for (VertexId V = 0; V < P.graph().numVertices(); ++V)
      if (Allocated[V])
        Sequence.push_back(V);
    std::sort(Sequence.begin(), Sequence.end(), [&](VertexId A, VertexId B) {
      if (P.graph().degree(A) != P.graph().degree(B))
        return P.graph().degree(A) > P.graph().degree(B);
      return A < B;
    });
  }

  std::vector<char> Used;
  Out.Success = true;
  for (VertexId V : Sequence) {
    Used.assign(P.graph().degree(V) + 1, 0);
    for (VertexId U : P.graph().neighbors(V)) {
      unsigned Reg = Out.RegisterOf[U];
      if (Reg != Assignment::kNoRegister && Reg < Used.size())
        Used[Reg] = 1;
    }
    unsigned Reg = 0;
    while (Used[Reg])
      ++Reg;
    Out.RegisterOf[V] = Reg;
    Out.RegistersUsed = std::max(Out.RegistersUsed, Reg + 1);
    // The index counts within V's own file: neighbors are same-class by
    // construction (cross-class values never interfere), so the greedy
    // scan colors each class independently against its own budget.
    Out.Success &= Reg < P.budgetOf(P.classOf(V));
  }
  return Out;
}
