//===- core/Delta.cpp - Warm-start delta allocation ------------------------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "core/Delta.h"

#include "ir/Interference.h"
#include "obs/Trace.h"

#include <cstdint>

using namespace layra;

//===----------------------------------------------------------------------===//
// Block content hashing
//===----------------------------------------------------------------------===//

namespace {

// SplitMix64 finalizer; the same mixer family the driver's content hashes
// use, seeded differently so block hashes never collide with task hashes
// by construction of the streams.
uint64_t mix(uint64_t H, uint64_t V) {
  H += 0x9e3779b97f4a7c15ull + V;
  H = (H ^ (H >> 30)) * 0xbf58476d1ce4e5b9ull;
  H = (H ^ (H >> 27)) * 0x94d049bb133111ebull;
  return H ^ (H >> 31);
}

/// Hash of *everything* in a block -- structure and non-structural fields
/// alike (frequencies, loop depths, opcode kinds, spill slots).  Two
/// blocks hash equal iff a resubmission left them untouched.
uint64_t hashBlockContent(const BasicBlock &BB) {
  uint64_t H = 0x64656c7461626173ull; // "deltabas"
  H = mix(H, BB.Preds.size());
  for (unsigned P : BB.Preds)
    H = mix(H, P);
  H = mix(H, BB.Succs.size());
  for (unsigned S : BB.Succs)
    H = mix(H, S);
  H = mix(H, BB.LoopDepth);
  H = mix(H, static_cast<uint64_t>(BB.Frequency));
  H = mix(H, BB.Instrs.size());
  for (const Instruction &I : BB.Instrs) {
    H = mix(H, static_cast<uint64_t>(I.Op));
    H = mix(H, I.Defs.size());
    for (ValueId V : I.Defs)
      H = mix(H, V);
    H = mix(H, I.Uses.size());
    for (ValueId V : I.Uses)
      H = mix(H, V);
    H = mix(H, static_cast<uint64_t>(I.SpillSlot));
    H = mix(H, I.MemUseSlots.size());
    for (int S : I.MemUseSlots)
      H = mix(H, static_cast<uint64_t>(S));
  }
  return H;
}

/// The structural (Tier-A) predicate: everything liveness and interference
/// construction read must match.  Opcode kinds may differ as long as
/// phi-ness is preserved (a Copy becoming an Op changes affinities, which
/// are recollected from the new function, never reused); frequencies,
/// loop depths and spill-slot bookkeeping are free to differ because only
/// spill *costs* depend on them and costs are recomputed per delta.
bool structurallyCompatible(const Function &Base, const Function &New,
                            std::string &Reason) {
  if (Base.numBlocks() != New.numBlocks()) {
    Reason = "block count differs";
    return false;
  }
  if (Base.numValues() != New.numValues()) {
    Reason = "value count differs";
    return false;
  }
  if (Base.maxValueClass() != New.maxValueClass()) {
    Reason = "max register class differs";
    return false;
  }
  for (ValueId V = 0; V < Base.numValues(); ++V)
    if (Base.valueClass(V) != New.valueClass(V)) {
      Reason = "register class of a value differs";
      return false;
    }
  for (unsigned B = 0; B < Base.numBlocks(); ++B) {
    const BasicBlock &BB = Base.block(B);
    const BasicBlock &NB = New.block(B);
    if (BB.Preds != NB.Preds || BB.Succs != NB.Succs) {
      Reason = "CFG edges differ";
      return false;
    }
    if (BB.Instrs.size() != NB.Instrs.size()) {
      Reason = "instruction count differs";
      return false;
    }
    for (size_t I = 0; I < BB.Instrs.size(); ++I) {
      const Instruction &BI = BB.Instrs[I];
      const Instruction &NI = NB.Instrs[I];
      if (BI.isPhi() != NI.isPhi()) {
        Reason = "phi-ness of an instruction differs";
        return false;
      }
      if (BI.Defs != NI.Defs || BI.Uses != NI.Uses) {
        Reason = "defs or uses of an instruction differ";
        return false;
      }
    }
  }
  return true;
}

} // namespace

FunctionDelta layra::computeFunctionDelta(const Function &Base,
                                          const Function &New) {
  FunctionDelta D;
  D.Compatible = structurallyCompatible(Base, New, D.Reason);
  if (!D.Compatible)
    return D;
  for (unsigned B = 0; B < Base.numBlocks(); ++B)
    if (hashBlockContent(Base.block(B)) != hashBlockContent(New.block(B)))
      D.ChangedBlocks.push_back(B);
  return D;
}

//===----------------------------------------------------------------------===//
// Delta problem construction
//===----------------------------------------------------------------------===//

bool layra::buildDeltaProblem(const DeltaBase &Base, const Function &F,
                              const TargetDesc &Target,
                              const std::vector<unsigned> &Budgets,
                              AllocationProblem &Out, bool &ExactRound0) {
  if (!Base.Live)
    return false; // Capture never completed; nothing to reuse.
  FunctionDelta D = computeFunctionDelta(Base.Ssa, F);
  if (!D.Compatible)
    return false;
  // Mirror ProblemBuilder's class trimming; an over-class function is
  // rejected here so the fallback path raises the canonical diagnostic.
  if (F.maxValueClass() >= Budgets.size())
    return false;
  PhaseSpan BuildSpan(Phase::ProblemBuild);
  std::vector<unsigned> UsedBudgets(Budgets.begin(),
                                    Budgets.begin() + F.maxValueClass() + 1);

  // Costs are the one input that may legitimately differ (frequencies,
  // opcode kinds); recompute them fully -- a linear pass.  The structural
  // predicate makes liveness, the interference graph, the PEO and the
  // clique tree provably equal to the base's, so those are never rebuilt.
  std::vector<Weight> NewCosts = computeSpillCosts(F, Target);
  if (NewCosts == Base.Costs) {
    if (UsedBudgets == Base.Problem.Budgets) {
      // Identical problem: the retained round-0 allocation is reusable
      // verbatim (allocateProblem is a pure function of the problem).
      Out = Base.Problem;
      ExactRound0 = true;
      return true;
    }
    Out = Base.Problem.withBudgets(std::move(UsedBudgets));
    ExactRound0 = false;
    return true;
  }

  // Costs changed: clone the graph (structure shared-nothing but cheap --
  // one copy, no edge recomputation) and refresh the vertex weights;
  // everything budget- and structure-shaped carries over.
  Graph NG(*Base.Problem.G);
  for (VertexId V = 0; V < NG.numVertices(); ++V)
    NG.setWeight(V, NewCosts[V]);
  Out.G = std::make_shared<Graph>(std::move(NG));
  Out.ClassOf = Base.Problem.ClassOf;
  Out.Constraints = Base.Problem.Constraints;
  for (PressureConstraint &C : Out.Constraints)
    C.Budget = UsedBudgets[C.Class];
  Out.Chordal = Base.Problem.Chordal;
  Out.Peo = Base.Problem.Peo;
  Out.Cliques = Base.Problem.Cliques;
  Out.Intervals = computeLiveIntervals(F, *Base.Live, NewCosts);
  Out.Budgets = std::move(UsedBudgets);
  ExactRound0 = false;
  return true;
}
