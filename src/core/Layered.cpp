//===- core/Layered.cpp - Layered-optimal allocation (the paper) -----------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "core/Layered.h"

#include "core/SolverWorkspace.h"
#include "core/StepLayer.h"
#include "graph/StableSet.h"
#include "support/Compiler.h"

#include <algorithm>

using namespace layra;

namespace {
/// Working state of one layered run.  All buffers are checked out of the
/// workspace, so consecutive layers (and consecutive runs sharing one
/// workspace) reuse the same arenas.
struct LayeredState {
  const AllocationProblem &P;
  const LayeredOptions &Opt;
  SolverWorkspace &WS;
  std::vector<char> &Candidates;       // Still eligible for allocation.
  std::vector<char> &Allocated;        // Result flags.
  std::vector<unsigned> &PerClique;    // Allocated count per maximal clique.
  std::vector<char> &CliqueClosed;     // Clique reached R allocated vertices.
  /// Clique tree for the step >= 2 DP; built once per run on first use so
  /// every layer shares it.
  CliqueTree StepTree;
  bool StepTreeBuilt = false;

  LayeredState(const AllocationProblem &P, const LayeredOptions &Opt,
               SolverWorkspace &WS)
      : P(P), Opt(Opt), WS(WS),
        Candidates(
            WS.acquire(WS.Layered.Candidates, P.graph().numVertices(), char(1))),
        Allocated(
            WS.acquire(WS.Layered.Allocated, P.graph().numVertices(), char(0))),
        PerClique(WS.acquire(WS.Layered.PerClique, P.Cliques.numCliques(), 0u)),
        CliqueClosed(WS.acquire(WS.Layered.CliqueClosed,
                                P.Cliques.numCliques(), char(0))) {}

  /// Weights for the next layer: raw, or biased by the remaining
  /// interference degree (paper §4.1).  Biasing w -> w*|V| + |adj| preserves
  /// the order of distinct weights and breaks ties toward vertices whose
  /// allocation removes more interference among the remaining candidates.
  /// Fills the workspace weight buffer in place.
  const std::vector<Weight> &layerWeights() {
    unsigned N = P.graph().numVertices();
    std::vector<Weight> &W = WS.acquire(WS.Layered.LayerWeights, N, Weight(0));
    for (VertexId V = 0; V < N; ++V) {
      if (!Candidates[V])
        continue;
      if (!Opt.Biased) {
        W[V] = P.graph().weight(V);
        continue;
      }
      Weight Degree = 0;
      for (VertexId U : P.graph().neighbors(V))
        Degree += Candidates[U] ? 1 : 0;
      W[V] = P.graph().weight(V) * static_cast<Weight>(N) + Degree;
    }
    return W;
  }

  /// Computes one optimal layer of at most \p Bound registers over the
  /// current candidates.  Empty result means no remaining candidate has
  /// positive weight.
  std::vector<VertexId> computeLayer(unsigned Bound) {
    const std::vector<Weight> &W = layerWeights();
    if (Bound == 1)
      return maximumWeightedStableSetChordal(P.graph(), P.Peo, W, Candidates, &WS)
          .Set;
    if (!StepTreeBuilt) {
      StepTree = buildCliqueTree(P.graph(), P.Cliques);
      StepTreeBuilt = true;
    }
    return optimalBoundedLayer(P, Candidates, W, Bound, &WS, &StepTree);
  }

  /// Marks \p Layer allocated and removes it from the candidates.
  void commitLayer(const std::vector<VertexId> &Layer) {
    for (VertexId V : Layer) {
      assert(Candidates[V] && !Allocated[V] && "layer reused a vertex");
      Allocated[V] = 1;
      Candidates[V] = 0;
    }
  }

  /// Paper Algorithm 4 (UPDATE): accounts freshly allocated vertices per
  /// clique; cliques that reach R allocated vertices are closed and their
  /// remaining vertices leave the candidate set.
  void updateCliques(const std::vector<VertexId> &Fresh) {
    for (VertexId V : Fresh)
      for (unsigned C : P.Cliques.CliquesOf[V]) {
        if (CliqueClosed[C])
          continue;
        if (++PerClique[C] < P.uniformBudget())
          continue;
        CliqueClosed[C] = 1;
        for (VertexId U : P.Cliques.Cliques[C])
          Candidates[U] = 0;
      }
  }
};
} // namespace

AllocationResult layra::layeredAllocate(const AllocationProblem &P,
                                        const LayeredOptions &Options,
                                        SolverWorkspace *WS) {
  if (!P.Chordal)
    layraFatalError("layeredAllocate requires a chordal instance; "
                    "use layeredHeuristicAllocate for general graphs");
  assert(Options.Step >= 1 && Options.Step <= kMaxLayerStep &&
         "unsupported step");
  WorkspaceOrLocal LocalScope(WS);
  WS = LocalScope.get();

  LayeredState S(P, Options, *WS);
  unsigned R = P.uniformBudget();

  // Phase 1 (paper Algorithm 2): stack optimal layers until R registers are
  // filled.  Each layer raises every clique's allocated count by at most the
  // layer bound, so the union stays R-feasible.
  unsigned Count = 0;
  while (Count < R) {
    unsigned Bound = std::min(Options.Step, R - Count);
    std::vector<VertexId> Layer = S.computeLayer(Bound);
    if (Layer.empty())
      break; // Only zero-weight (or no) candidates remain.
    S.commitLayer(Layer);
    if (Options.FixedPoint)
      S.updateCliques(Layer);
    Count += Bound;
  }

  // Phase 2 (paper Algorithm 3, lines 8-13): allocate any vertex whose
  // cliques still have spare registers, one stable-set layer at a time,
  // until nothing changes.
  if (Options.FixedPoint) {
    // Close cliques the first phase saturated (Algorithm 3 line 8 calls
    // UPDATE once before the loop; updateCliques above already accounted
    // the counts, so just sweep for saturated cliques).
    for (unsigned C = 0; C < P.Cliques.numCliques(); ++C)
      if (!S.CliqueClosed[C] && S.PerClique[C] >= R) {
        S.CliqueClosed[C] = 1;
        for (VertexId U : P.Cliques.Cliques[C])
          S.Candidates[U] = 0;
      }
    for (;;) {
      std::vector<VertexId> Layer = S.computeLayer(1);
      if (Layer.empty())
        break;
      S.commitLayer(Layer);
      S.updateCliques(Layer);
    }
  }

  // The result owns its flags: copy them out of the workspace buffer at
  // exact size so the arena keeps its capacity for the next run.
  AllocationResult Result = AllocationResult::fromFlags(
      P.graph(), std::vector<char>(S.Allocated.begin(), S.Allocated.end()));
  assert(isFeasibleAllocation(P, Result.Allocated) &&
         "layered allocation violated a clique constraint");
  return Result;
}
