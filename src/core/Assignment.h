//===- core/Assignment.h - Register assignment (coloring) ------*- C++ -*-===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The assignment half of decoupled register allocation: once the allocation
/// has chosen which variables stay in registers, a greedy coloring along the
/// (reverse) PEO -- the "tree scan" of paper §1 -- assigns concrete registers
/// to a feasible allocation of a chordal instance without any further spill.
///
//===----------------------------------------------------------------------===//

#ifndef LAYRA_CORE_ASSIGNMENT_H
#define LAYRA_CORE_ASSIGNMENT_H

#include "core/AllocationProblem.h"

#include <vector>

namespace layra {

/// Register assignment for the allocated vertices.  A concrete register is
/// a (class, index) pair: RegisterOf[V] is the index *within* class
/// ClassOf[V]'s file (r3 of the GPR file and s3 of the VFP file are
/// different machine registers).  Single-class instances have ClassOf all
/// zero and the historical flat-index reading.
struct Assignment {
  /// Register index per vertex (within the vertex's class); kNoRegister
  /// for spilled vertices.
  std::vector<unsigned> RegisterOf;
  /// Register class per vertex (copied from the problem).
  std::vector<RegClassId> ClassOf;
  /// Max over classes of distinct register indices used (<= the class
  /// budget on success).
  unsigned RegistersUsed = 0;
  /// True when every allocated vertex received an index below its class's
  /// budget.
  bool Success = false;

  static constexpr unsigned kNoRegister = ~0u;
};

/// Colors the subgraph induced by \p Allocated.
///
/// For chordal instances a feasible allocation (<= R per maximal clique)
/// always succeeds: the induced subgraph is chordal with clique number <= R,
/// and the greedy reverse-PEO scan is an optimal coloring.  For general
/// instances the greedy scan may exceed R (Success reports it) -- the paper
/// likewise only guarantees assignment on SSA programs.
Assignment assignRegisters(const AllocationProblem &P,
                           const std::vector<char> &Allocated);

} // namespace layra

#endif // LAYRA_CORE_ASSIGNMENT_H
