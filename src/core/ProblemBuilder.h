//===- core/ProblemBuilder.h - Function -> allocation problem ---*- C++ -*-===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builds AllocationProblems from IR functions: liveness, spill costs,
/// interference graph, point constraints and live intervals in one call.
/// This is the front door of the library for compiler-derived instances.
///
//===----------------------------------------------------------------------===//

#ifndef LAYRA_CORE_PROBLEMBUILDER_H
#define LAYRA_CORE_PROBLEMBUILDER_H

#include "core/AllocationProblem.h"
#include "ir/Program.h"
#include "ir/Target.h"

namespace layra {

class SolverWorkspace;

/// Builds a *chordal* instance from a strict-SSA function: the interference
/// graph of SSA code is chordal and its maximal cliques are the maximal live
/// sets.  Aborts (via the chordality check) if \p F is not in SSA form.
AllocationProblem buildSsaProblem(const Function &F, const TargetDesc &Target,
                                  unsigned NumRegisters,
                                  SolverWorkspace *WS = nullptr);

/// Builds a *general* instance from any function (typically non-SSA, as in
/// the paper's JikesRVM evaluation): point live sets become the ILP
/// constraints; flattened live intervals are attached for the linear-scan
/// baselines.
AllocationProblem buildGeneralProblem(const Function &F,
                                      const TargetDesc &Target,
                                      unsigned NumRegisters);

} // namespace layra

#endif // LAYRA_CORE_PROBLEMBUILDER_H
