//===- core/ProblemBuilder.h - Function -> allocation problem ---*- C++ -*-===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builds AllocationProblems from IR functions: liveness, spill costs,
/// interference graph, pressure constraints and live intervals in one call.
/// This is the front door of the library for compiler-derived instances.
///
/// Register classes: every entry point exists in a scalar form (budget for
/// class 0; any other classes get the target's architectural counts) and a
/// vector form (one budget per target class).  The built problem is
/// trimmed to the classes the function actually uses, so a class-0-only
/// function on a multi-class target yields the identical single-class
/// instance it always did.
///
//===----------------------------------------------------------------------===//

#ifndef LAYRA_CORE_PROBLEMBUILDER_H
#define LAYRA_CORE_PROBLEMBUILDER_H

#include "core/AllocationProblem.h"
#include "ir/Liveness.h"
#include "ir/Program.h"
#include "ir/Target.h"

#include <optional>
#include <vector>

namespace layra {

class SolverWorkspace;

/// Intermediate artifacts of one buildSsaProblem() run, exported on
/// request so delta-solving (core/Delta.h) can retain them with the
/// problem instead of recomputing liveness for the base later.
struct ProblemBuildArtifacts {
  std::optional<Liveness> Live;
  std::vector<Weight> Costs;
};

/// Builds a *chordal* instance from a strict-SSA function: the interference
/// graph of SSA code is chordal and its maximal cliques are the maximal
/// per-class live sets.  Aborts (via the chordality check) if \p F is not
/// in SSA form.
AllocationProblem buildSsaProblem(const Function &F, const TargetDesc &Target,
                                  unsigned NumRegisters,
                                  SolverWorkspace *WS = nullptr);

/// Vector-budget form: \p Budgets holds one register count per target
/// class (resolveClassBudgets in ir/Target.h).  \p Artifacts, when
/// non-null, receives the liveness and spill costs the build computed
/// (delta-base capture); exporting them changes nothing about the built
/// problem.
AllocationProblem buildSsaProblem(const Function &F, const TargetDesc &Target,
                                  const std::vector<unsigned> &Budgets,
                                  SolverWorkspace *WS = nullptr,
                                  ProblemBuildArtifacts *Artifacts = nullptr);

/// Builds a *general* instance from any function (typically non-SSA, as in
/// the paper's JikesRVM evaluation): point live sets become the ILP
/// constraints; flattened live intervals are attached for the linear-scan
/// baselines.
AllocationProblem buildGeneralProblem(const Function &F,
                                      const TargetDesc &Target,
                                      unsigned NumRegisters);

/// Vector-budget form of buildGeneralProblem.
AllocationProblem buildGeneralProblem(const Function &F,
                                      const TargetDesc &Target,
                                      const std::vector<unsigned> &Budgets);

} // namespace layra

#endif // LAYRA_CORE_PROBLEMBUILDER_H
