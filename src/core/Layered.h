//===- core/Layered.h - Layered-optimal allocation (the paper) --*- C++ -*-===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The layered-optimal spilling heuristic of Diouf, Cohen & Rastello (CGO
/// 2013), for chordal (SSA) instances.  Instead of incrementally *spilling*
/// variables, the allocator incrementally *allocates* optimal layers: each
/// layer is an optimal allocation for `step` registers over the not-yet-
/// allocated variables -- a maximum weighted stable set when step == 1
/// (Frank's algorithm, paper Algorithm 1), the clique-tree DP otherwise.
///
/// Variants (paper §4/§6 names):
///  - NL    plain Algorithm 2;
///  - BL    biased weights w'(v) = w(v)*|V| + |adj(v)| break stable-set ties
///          toward removing more interference (§4.1);
///  - FPL   after the R layers, keep allocating vertices whose maximal
///          cliques still have spare registers, to a fixed point
///          (Algorithms 3 and 4, §4.2);
///  - BFPL  both.
///
//===----------------------------------------------------------------------===//

#ifndef LAYRA_CORE_LAYERED_H
#define LAYRA_CORE_LAYERED_H

#include "core/AllocationProblem.h"

namespace layra {

class SolverWorkspace;

/// Configuration of the layered-optimal allocator.
struct LayeredOptions {
  /// Bias weights by interference degree (the paper's "B").
  bool Biased = false;
  /// Iterate to a fixed point after the R layers (the paper's "FP").
  bool FixedPoint = false;
  /// Registers allocated per layer, in [1, kMaxLayerStep]; the paper
  /// evaluates step == 1.
  unsigned Step = 1;

  /// The four named variants of the paper.
  static LayeredOptions nl() { return {false, false, 1}; }
  static LayeredOptions bl() { return {true, false, 1}; }
  static LayeredOptions fpl() { return {false, true, 1}; }
  static LayeredOptions bfpl() { return {true, true, 1}; }
};

/// Runs the layered-optimal allocator on a chordal instance.
/// The result is always feasible: at most NumRegisters allocated vertices in
/// every maximal clique, hence the allocated set is R-colorable.
/// Complexity with step == 1: O(R * (|V| + |E|)) plus the fixed-point
/// iterations, each also O(|V| + |E|).
///
/// \p WS optionally supplies the per-layer scratch (candidate masks, layer
/// weights, Frank's-algorithm state, the step DP tables); each layer then
/// reuses the previous layer's buffers instead of reallocating them.
/// Results are bit-identical with and without a workspace.
AllocationResult layeredAllocate(const AllocationProblem &P,
                                 const LayeredOptions &Options = {},
                                 SolverWorkspace *WS = nullptr);

} // namespace layra

#endif // LAYRA_CORE_LAYERED_H
