//===- core/StepLayer.h - Optimal bounded layers (step >= 2) ----*- C++ -*-===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The step >= 2 layer primitive of the layered-optimal allocator: a
/// maximum-weight vertex set that raises the register pressure of every
/// program point (maximal clique) by at most `Bound`.  The paper (§4) notes
/// this is solvable by dynamic programming [Bouchez et al., LCTES'07]; we
/// implement the DP over the clique tree, whose per-node state is a <=Bound
/// subset of the clique -- polynomial for every fixed Bound, which is the
/// pseudo-polynomial-in-registers property the layered approach exploits.
///
//===----------------------------------------------------------------------===//

#ifndef LAYRA_CORE_STEPLAYER_H
#define LAYRA_CORE_STEPLAYER_H

#include "core/AllocationProblem.h"

#include <vector>

namespace layra {

class SolverWorkspace;

/// Maximum step the *layered allocator* uses per layer (the state space
/// grows as |clique|^step).  The DP itself accepts any bound whose state
/// space the caller has checked with estimateBoundedLayerStates().
inline constexpr unsigned kMaxLayerStep = 3;

/// Estimated total DP table size (number of subset states summed over all
/// clique-tree nodes) for a run of optimalBoundedLayer with \p Bound on the
/// unmasked vertices.  Saturates at 1e18.  The exact solver uses this to
/// decide between the DP and branch-and-bound.
double estimateBoundedLayerStates(const AllocationProblem &P,
                                  const std::vector<char> &Mask,
                                  unsigned Bound);

/// Computes a maximum-weight subset S of the unmasked vertices such that
/// |S intersect K| <= Bound for every maximal clique K of the chordal
/// instance \p P.
///
/// \param P chordal allocation problem (uses G, Cliques and the clique tree
///        derived from them; NumRegisters is ignored).
/// \param Mask vertex filter: only vertices V with Mask[V] != 0 participate.
/// \param Weights per-vertex objective weights (may be biased).
/// \param Bound pressure increment per clique, in [1, kMaxLayerStep].
/// \param WS optional scratch workspace: the per-node DP tables (bags,
///        subset states, values, projection indices) are checked out of it,
///        so repeated layers over one problem reuse the same arenas.
/// \param Tree optional precomputed clique tree of (P.graph(), P.Cliques); when
///        null, one is built per call.  The layered allocator builds it
///        once per run and shares it across layers.
///
/// For Bound == 1 this equals the maximum weighted stable set; callers use
/// Frank's algorithm for that case instead (it is linear), but the DP accepts
/// it, which the tests exploit for cross-validation.
std::vector<VertexId> optimalBoundedLayer(const AllocationProblem &P,
                                          const std::vector<char> &Mask,
                                          const std::vector<Weight> &Weights,
                                          unsigned Bound,
                                          SolverWorkspace *WS = nullptr,
                                          const CliqueTree *Tree = nullptr);

} // namespace layra

#endif // LAYRA_CORE_STEPLAYER_H
