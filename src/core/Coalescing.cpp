//===- core/Coalescing.cpp - Affinities and conservative coalescing --------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "core/Coalescing.h"

#include <algorithm>
#include <map>

using namespace layra;

std::vector<Affinity> layra::collectAffinities(const Function &F) {
  std::map<std::pair<ValueId, ValueId>, Weight> Merged;
  auto Note = [&](ValueId A, ValueId B, Weight Benefit) {
    if (A == B || A == kNoValue || B == kNoValue)
      return;
    // A cross-class copy is a conversion between register files: the two
    // values can never share a register, so it is not an affinity.
    if (F.valueClass(A) != F.valueClass(B))
      return;
    if (A > B)
      std::swap(A, B);
    Merged[{A, B}] += Benefit;
  };

  for (BlockId Blk = 0; Blk < F.numBlocks(); ++Blk) {
    const BasicBlock &BB = F.block(Blk);
    for (const Instruction &I : BB.Instrs) {
      if (I.Op == Opcode::Copy) {
        assert(I.Defs.size() == 1 && I.Uses.size() == 1 && "malformed copy");
        Note(I.Defs[0], I.Uses[0], BB.Frequency);
        continue;
      }
      if (I.isPhi()) {
        // A phi is a parallel copy on each incoming edge; merging the def
        // with an operand saves the move in the corresponding predecessor.
        for (size_t P = 0; P < I.Uses.size(); ++P)
          if (I.Uses[P] != kNoValue)
            Note(I.Defs[0], I.Uses[P], F.block(BB.Preds[P]).Frequency);
      }
    }
  }

  std::vector<Affinity> Out;
  Out.reserve(Merged.size());
  for (const auto &[Pair, Benefit] : Merged)
    Out.push_back({Pair.first, Pair.second, Benefit});
  return Out;
}

CoalescingResult
layra::coalesceConservative(const Graph &G,
                            const std::vector<Affinity> &Affinities,
                            unsigned NumRegisters) {
  unsigned N = G.numVertices();
  CoalescingResult Out;
  Out.Representative.resize(N);
  for (VertexId V = 0; V < N; ++V)
    Out.Representative[V] = V;

  // Union-find with path halving; merged adjacency kept as sorted vectors
  // rebuilt lazily per merge (graphs here are small enough).
  auto Find = [&](VertexId V) {
    while (Out.Representative[V] != V) {
      Out.Representative[V] = Out.Representative[Out.Representative[V]];
      V = Out.Representative[V];
    }
    return V;
  };

  // Current adjacency (over representatives) as sorted vectors.
  std::vector<std::vector<VertexId>> Adj(N);
  for (VertexId V = 0; V < N; ++V) {
    Adj[V].assign(G.neighbors(V).begin(), G.neighbors(V).end());
    std::sort(Adj[V].begin(), Adj[V].end());
  }

  std::vector<Affinity> Queue = Affinities;
  std::sort(Queue.begin(), Queue.end(), [](const Affinity &X,
                                           const Affinity &Y) {
    if (X.Benefit != Y.Benefit)
      return X.Benefit > Y.Benefit;
    if (X.A != Y.A)
      return X.A < Y.A;
    return X.B < Y.B;
  });

  auto Degree = [&](VertexId Rep) {
    return static_cast<unsigned>(Adj[Rep].size());
  };

  for (const Affinity &Aff : Queue) {
    VertexId A = Find(Aff.A), B = Find(Aff.B);
    if (A == B)
      continue; // Already merged transitively: benefit realized for free.
    if (std::binary_search(Adj[A].begin(), Adj[A].end(), B))
      continue; // Interfering: cannot share a register.

    // Briggs test: the merged node must have < R neighbors of significant
    // (>= R) degree, so colorability cannot get worse.
    std::vector<VertexId> Union;
    std::set_union(Adj[A].begin(), Adj[A].end(), Adj[B].begin(),
                   Adj[B].end(), std::back_inserter(Union));
    unsigned Significant = 0;
    for (VertexId U : Union)
      Significant += Degree(Find(U)) >= NumRegisters ? 1 : 0;
    if (Significant >= NumRegisters)
      continue;

    // Merge B into A.
    Out.Representative[B] = A;
    Adj[A] = std::move(Union);
    // Rewire neighbors of B to point at A.
    for (VertexId U : Adj[B]) {
      std::vector<VertexId> &List = Adj[U];
      auto It = std::lower_bound(List.begin(), List.end(), B);
      if (It != List.end() && *It == B)
        List.erase(It);
      It = std::lower_bound(List.begin(), List.end(), A);
      if (It == List.end() || *It != A)
        List.insert(It, A);
    }
    Adj[B].clear();
    ++Out.Merged;
    Out.BenefitRealized += Aff.Benefit;
  }

  // Build the coalesced graph over representatives.
  Out.CoalescedIndex.assign(N, ~0u);
  for (VertexId V = 0; V < N; ++V) {
    VertexId Rep = Find(V);
    if (Out.CoalescedIndex[Rep] == ~0u)
      Out.CoalescedIndex[Rep] = Out.Coalesced.addVertex(0, G.name(Rep));
  }
  for (VertexId V = 0; V < N; ++V) {
    VertexId Rep = Find(V);
    VertexId Id = Out.CoalescedIndex[Rep];
    Out.Coalesced.setWeight(Id, Out.Coalesced.weight(Id) + G.weight(V));
    Out.CoalescedIndex[V] = Id; // Every vertex maps to its merged node.
  }
  for (VertexId V = 0; V < N; ++V)
    for (VertexId U : G.neighbors(V)) {
      VertexId A = Out.CoalescedIndex[V], B = Out.CoalescedIndex[U];
      if (A != B && V < U)
        Out.Coalesced.addEdge(A, B);
    }
  // Flatten representatives for the caller.
  for (VertexId V = 0; V < N; ++V)
    Out.Representative[V] = Find(V);
  return Out;
}

Assignment layra::assignRegistersBiased(
    const AllocationProblem &P, const std::vector<char> &Allocated,
    const std::vector<Affinity> &Affinities) {
  assert(Allocated.size() == P.graph().numVertices() && "flag size mismatch");
  Assignment Out;
  Out.RegisterOf.assign(P.graph().numVertices(), Assignment::kNoRegister);
  Out.ClassOf.assign(P.ClassOf.begin(), P.ClassOf.end());
  Out.ClassOf.resize(P.graph().numVertices(), 0);

  // Affinity adjacency with benefits, for the color preference.
  std::vector<std::vector<std::pair<VertexId, Weight>>> Wants(
      P.graph().numVertices());
  for (const Affinity &A : Affinities) {
    if (A.A >= P.graph().numVertices() || A.B >= P.graph().numVertices())
      continue;
    Wants[A.A].push_back({A.B, A.Benefit});
    Wants[A.B].push_back({A.A, A.Benefit});
  }

  std::vector<VertexId> Sequence;
  if (P.Chordal) {
    for (auto It = P.Peo.Order.rbegin(); It != P.Peo.Order.rend(); ++It)
      if (Allocated[*It])
        Sequence.push_back(*It);
  } else {
    for (VertexId V = 0; V < P.graph().numVertices(); ++V)
      if (Allocated[V])
        Sequence.push_back(V);
  }

  std::vector<char> Used;
  std::vector<Weight> Preference;
  Out.Success = true;
  for (VertexId V : Sequence) {
    unsigned Budget =
        std::max(P.budgetOf(P.classOf(V)), P.graph().degree(V) + 1);
    Used.assign(Budget, 0);
    Preference.assign(Budget, 0);
    for (VertexId U : P.graph().neighbors(V)) {
      unsigned Reg = Out.RegisterOf[U];
      if (Reg != Assignment::kNoRegister && Reg < Used.size())
        Used[Reg] = 1;
    }
    // Score free registers by the benefit of co-locating with already
    // colored affinity partners.
    for (const auto &[Partner, Benefit] : Wants[V]) {
      unsigned Reg = Out.RegisterOf[Partner];
      if (Reg != Assignment::kNoRegister && Reg < Budget && !Used[Reg])
        Preference[Reg] += Benefit;
    }
    unsigned BestReg = ~0u;
    for (unsigned Reg = 0; Reg < Budget; ++Reg) {
      if (Used[Reg])
        continue;
      if (BestReg == ~0u || Preference[Reg] > Preference[BestReg])
        BestReg = Reg;
    }
    assert(BestReg != ~0u && "no free register within degree+1 budget");
    Out.RegisterOf[V] = BestReg;
    Out.RegistersUsed = std::max(Out.RegistersUsed, BestReg + 1);
    Out.Success &= BestReg < P.budgetOf(P.classOf(V));
  }
  return Out;
}

Weight layra::remainingCopyCost(const std::vector<Affinity> &Affinities,
                                const std::vector<char> &Allocated,
                                const std::vector<unsigned> &RegisterOf) {
  Weight Cost = 0;
  for (const Affinity &A : Affinities) {
    if (A.A >= Allocated.size() || A.B >= Allocated.size())
      continue;
    bool SameReg = Allocated[A.A] && Allocated[A.B] &&
                   RegisterOf[A.A] == RegisterOf[A.B];
    if (!SameReg)
      Cost += A.Benefit;
  }
  return Cost;
}
