//===- core/StepLayer.cpp - Optimal bounded layers (step >= 2) -------------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
//
// Implementation notes: the DP over the clique tree stores, per node, the
// subsets of the (masked) bag with at most Bound vertices.  Subsets are
// encoded as 64-bit masks over the bag's local ordering, which keeps the
// per-state footprint small enough for the exact solver to afford R ~ 8 on
// suite-sized cliques.  Consistency between a node and its children is
// enforced through the separator: child states are grouped by their
// projection onto the separator, keyed by a mask over the separator's
// canonical vertex order.
//
// All per-node tables live in SolverWorkspace::StepLayerScratch
// (clear-don't-free), so the repeated layers of one layered run -- and
// consecutive runs sharing a workspace -- re-fill warm buffers instead of
// reallocating them.
//
//===----------------------------------------------------------------------===//

#include "core/StepLayer.h"

#include "core/SolverWorkspace.h"
#include "obs/Trace.h"
#include "support/Compiler.h"

#include <algorithm>
#include <cstdint>

using namespace layra;

double layra::estimateBoundedLayerStates(const AllocationProblem &P,
                                         const std::vector<char> &Mask,
                                         unsigned Bound) {
  double Total = 0;
  for (const auto &K : P.Cliques.Cliques) {
    unsigned M = 0;
    for (VertexId V : K)
      M += (Mask.empty() || Mask[V]) ? 1 : 0;
    // Sum of binomials C(M, 0..Bound), saturating.
    double Count = 1, Term = 1;
    for (unsigned J = 1; J <= std::min(Bound, M); ++J) {
      Term *= static_cast<double>(M - J + 1) / static_cast<double>(J);
      Count += Term;
      if (Count > 1e18)
        return 1e18;
    }
    Total += Count;
    if (Total > 1e18)
      return 1e18;
  }
  return Total;
}

namespace {
/// Index of \p Key in a node's projection index -- the parallel sorted
/// (ProjKeys, ProjVal, ProjState) arrays of a StepDpNode (cheaper than a
/// hash map at millions of states).  The binary search touches only the
/// packed key array; callers read ProjVal/ProjState at the returned index.
/// Returns SIZE_MAX when absent.
size_t findProjection(const SolverWorkspace::StepDpNode &Node, uint64_t Key) {
  auto It = std::lower_bound(Node.ProjKeys.begin(), Node.ProjKeys.end(), Key);
  if (It == Node.ProjKeys.end() || *It != Key)
    return SIZE_MAX;
  return static_cast<size_t>(It - Node.ProjKeys.begin());
}

/// Enumerates all subsets of {0..M-1} with at most Bound bits, in a
/// deterministic order with the empty set first.  \p Current and \p Next
/// are caller-owned scratch (kept warm across nodes).
void enumerateSubsets(unsigned M, unsigned Bound, std::vector<uint64_t> &Out,
                      std::vector<uint64_t> &Current,
                      std::vector<uint64_t> &Next) {
  Out.clear();
  Out.push_back(0);
  Current.clear();
  Current.push_back(0);
  for (unsigned Size = 1; Size <= std::min(Bound, M); ++Size) {
    Next.clear();
    for (uint64_t S : Current) {
      unsigned Lowest =
          S == 0 ? M : static_cast<unsigned>(__builtin_ctzll(S));
      for (unsigned B = 0; B < Lowest; ++B)
        Next.push_back(S | (uint64_t(1) << B));
    }
    for (uint64_t S : Next)
      Out.push_back(S);
    std::swap(Current, Next);
  }
}
} // namespace

std::vector<VertexId>
layra::optimalBoundedLayer(const AllocationProblem &P,
                           const std::vector<char> &Mask,
                           const std::vector<Weight> &Weights, unsigned Bound,
                           SolverWorkspace *WS, const CliqueTree *Tree) {
  assert(P.Chordal && "bounded layers require a chordal instance");
  assert(Bound >= 1 && "bound must be positive");
  PhaseSpan DpSpan(Phase::CliqueTreeDp);
  assert(Mask.size() == P.graph().numVertices() && "mask size mismatch");
  assert(Weights.size() == P.graph().numVertices() && "weights size mismatch");
  WorkspaceOrLocal LocalScope(WS);
  WS = LocalScope.get();

  const CliqueCover &Cover = P.Cliques;
  CliqueTree OwnTree;
  if (!Tree) {
    OwnTree = buildCliqueTree(P.graph(), Cover);
    Tree = &OwnTree;
  }
  unsigned NumNodes = Cover.numCliques();

  // Per-node DP tables out of the workspace pool; inner buffers keep their
  // capacity from the previous layer.  Checked out through acquireCleared
  // so the DP tables -- the step path's largest arenas -- show up in the
  // workspace accounting like every other buffer.
  std::vector<SolverWorkspace::StepDpNode> &Tables = WS->Step.Nodes;
  if (Tables.size() < NumNodes)
    Tables.resize(NumNodes);
  for (unsigned C = 0; C < NumNodes; ++C) {
    SolverWorkspace::StepDpNode &T = Tables[C];
    WS->acquireCleared(T.Bag);
    WS->acquireCleared(T.States);
    WS->acquireCleared(T.Value);
    WS->acquireCleared(T.ProjKeys);
    WS->acquireCleared(T.ProjVal);
    WS->acquireCleared(T.ProjState);
    WS->acquireCleared(T.Sep);
  }
  WS->acquireCleared(WS->Step.SubsetsCurrent);
  WS->acquireCleared(WS->Step.SubsetsNext);

  // Masked bags and separators, both sorted by vertex id (canonical order).
  for (unsigned C = 0; C < NumNodes; ++C) {
    SolverWorkspace::StepDpNode &T = Tables[C];
    for (VertexId V : Cover.Cliques[C])
      if (Mask[V])
        T.Bag.push_back(V);
    std::sort(T.Bag.begin(), T.Bag.end());
    if (T.Bag.size() > 64)
      layraFatalError("optimalBoundedLayer: clique exceeds 64 live values");
    for (VertexId V : Tree->Separator[C])
      if (Mask[V])
        T.Sep.push_back(V);
    std::sort(T.Sep.begin(), T.Sep.end());
  }

  // Projection of a bag-subset mask onto a separator, as a mask over the
  // separator's canonical order.  Both lists are sorted by vertex id.
  auto Project = [](const std::vector<VertexId> &Bag, uint64_t SubsetMask,
                    const std::vector<VertexId> &Separator) {
    uint64_t Out = 0;
    size_t BagIdx = 0;
    for (size_t SepIdx = 0; SepIdx < Separator.size(); ++SepIdx) {
      while (BagIdx < Bag.size() && Bag[BagIdx] < Separator[SepIdx])
        ++BagIdx;
      assert(BagIdx < Bag.size() && Bag[BagIdx] == Separator[SepIdx] &&
             "separator vertex missing from bag");
      if (SubsetMask & (uint64_t(1) << BagIdx))
        Out |= uint64_t(1) << SepIdx;
    }
    return Out;
  };

  // Bottom-up sweep (children before parents).
  for (auto It = Tree->TopoOrder.rbegin(); It != Tree->TopoOrder.rend();
       ++It) {
    unsigned C = *It;
    SolverWorkspace::StepDpNode &T = Tables[C];
    enumerateSubsets(static_cast<unsigned>(T.Bag.size()), Bound, T.States,
                     WS->Step.SubsetsCurrent, WS->Step.SubsetsNext);
    obs::addDpStates(T.States.size());
    T.Value.assign(T.States.size(), 0);

    // Weight of each bag vertex.
    std::vector<Weight> &BagWeight =
        WS->acquire(WS->Step.BagWeight, T.Bag.size(), Weight(0));
    for (size_t I = 0; I < T.Bag.size(); ++I)
      BagWeight[I] = Weights[T.Bag[I]];

    for (size_t S = 0; S < T.States.size(); ++S) {
      uint64_t StateMask = T.States[S];
      Weight Total = 0;
      uint64_t Bits = StateMask;
      while (Bits) {
        Total += BagWeight[static_cast<unsigned>(__builtin_ctzll(Bits))];
        Bits &= Bits - 1;
      }
      for (unsigned D : Tree->Children[C]) {
        uint64_t Proj = Project(T.Bag, StateMask, Tables[D].Sep);
        size_t Found = findProjection(Tables[D], Proj);
        assert(Found != SIZE_MAX &&
               "separator projection missing from child table");
        Total += Tables[D].ProjVal[Found];
      }
      T.Value[S] = Total;
    }

    // Group this node's states by projection onto its parent separator,
    // with the separator weight removed (counted at the parent).
    {
      auto &Agg = WS->acquireCleared(WS->Step.Agg);
      Agg.reserve(T.States.size());
      for (size_t S = 0; S < T.States.size(); ++S) {
        uint64_t Proj = Project(T.Bag, T.States[S], T.Sep);
        Weight SepWeight = 0;
        uint64_t Bits = Proj;
        while (Bits) {
          SepWeight +=
              Weights[T.Sep[static_cast<unsigned>(__builtin_ctzll(Bits))]];
          Bits &= Bits - 1;
        }
        Agg.push_back({Proj, T.Value[S] - SepWeight,
                       static_cast<uint32_t>(S)});
      }
      std::sort(Agg.begin(), Agg.end(),
                [](const SolverWorkspace::StepAggEntry &A,
                   const SolverWorkspace::StepAggEntry &B) {
                  if (A.Key != B.Key)
                    return A.Key < B.Key;
                  return A.Val > B.Val;
                });
      for (const SolverWorkspace::StepAggEntry &E : Agg)
        if (T.ProjKeys.empty() || T.ProjKeys.back() != E.Key) {
          T.ProjKeys.push_back(E.Key);
          T.ProjVal.push_back(E.Val);
          T.ProjState.push_back(E.State);
        }
    }

    // Children's big tables are no longer needed once the parent consumed
    // them -- but reconstruction walks down through the projection index
    // and States, so only drop Value for children (capacity is retained by
    // the pool for the next layer).
    for (unsigned D : Tree->Children[C])
      Tables[D].Value.clear();
  }

  // Reconstruction: pick the best root states and walk choices down via the
  // projection maps.
  std::vector<char> &Selected =
      WS->acquire(WS->Step.Selected, P.graph().numVertices(), char(0));
  auto &Work = WS->acquireCleared(WS->Step.Work); // (node, chosen mask)
  for (unsigned C = 0; C < NumNodes; ++C) {
    if (Tree->Parent[C] != ~0u)
      continue;
    const SolverWorkspace::StepDpNode &T = Tables[C];
    // Roots keep their Value arrays (nothing consumed them).
    size_t Best = 0;
    for (size_t S = 1; S < T.States.size(); ++S)
      if (T.Value[S] > T.Value[Best])
        Best = S;
    Work.push_back({C, T.States[Best]});
  }
  while (!Work.empty()) {
    auto [C, StateMask] = Work.back();
    Work.pop_back();
    const SolverWorkspace::StepDpNode &T = Tables[C];
    uint64_t Bits = StateMask;
    while (Bits) {
      Selected[T.Bag[static_cast<unsigned>(__builtin_ctzll(Bits))]] = 1;
      Bits &= Bits - 1;
    }
    for (unsigned D : Tree->Children[C]) {
      uint64_t Proj = Project(T.Bag, StateMask, Tables[D].Sep);
      size_t Found = findProjection(Tables[D], Proj);
      assert(Found != SIZE_MAX && "projection lost during reconstruction");
      Work.push_back({D, Tables[D].States[Tables[D].ProjState[Found]]});
    }
  }

  std::vector<VertexId> Out;
  for (VertexId V = 0; V < P.graph().numVertices(); ++V)
    if (Selected[V])
      Out.push_back(V);
  return Out;
}
