//===- core/StepLayer.cpp - Optimal bounded layers (step >= 2) -------------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
//
// Implementation notes: the DP over the clique tree stores, per node, the
// subsets of the (masked) bag with at most Bound vertices.  Subsets are
// encoded as 64-bit masks over the bag's local ordering, which keeps the
// per-state footprint small enough for the exact solver to afford R ~ 8 on
// suite-sized cliques.  Consistency between a node and its children is
// enforced through the separator: child states are grouped by their
// projection onto the separator, keyed by a mask over the separator's
// canonical vertex order.
//
//===----------------------------------------------------------------------===//

#include "core/StepLayer.h"

#include "support/Compiler.h"

#include <algorithm>
#include <cstdint>

using namespace layra;

double layra::estimateBoundedLayerStates(const AllocationProblem &P,
                                         const std::vector<char> &Mask,
                                         unsigned Bound) {
  double Total = 0;
  for (const auto &K : P.Cliques.Cliques) {
    unsigned M = 0;
    for (VertexId V : K)
      M += (Mask.empty() || Mask[V]) ? 1 : 0;
    // Sum of binomials C(M, 0..Bound), saturating.
    double Count = 1, Term = 1;
    for (unsigned J = 1; J <= std::min(Bound, M); ++J) {
      Term *= static_cast<double>(M - J + 1) / static_cast<double>(J);
      Count += Term;
      if (Count > 1e18)
        return 1e18;
    }
    Total += Count;
    if (Total > 1e18)
      return 1e18;
  }
  return Total;
}

namespace {
/// Best (value, state index) per separator projection, stored as parallel
/// sorted vectors (cheaper than a hash map at millions of states).
struct ProjectionIndex {
  std::vector<uint64_t> Keys; // Sorted projection masks.
  std::vector<std::pair<Weight, uint32_t>> Best;

  const std::pair<Weight, uint32_t> *find(uint64_t Key) const {
    auto It = std::lower_bound(Keys.begin(), Keys.end(), Key);
    if (It == Keys.end() || *It != Key)
      return nullptr;
    return &Best[static_cast<size_t>(It - Keys.begin())];
  }
};

/// Per-clique-tree-node DP table with bitmask-encoded subsets.
struct NodeTable {
  std::vector<VertexId> Bag;        // Masked bag, sorted by vertex id.
  std::vector<uint64_t> States;     // Subset masks over Bag, |subset|<=Bound.
  std::vector<Weight> Value;        // Best subtree weight per state.
  ProjectionIndex BestByProjection; // Keyed over the parent separator.
};

/// Enumerates all subsets of {0..M-1} with at most Bound bits, in a
/// deterministic order with the empty set first.
void enumerateSubsets(unsigned M, unsigned Bound,
                      std::vector<uint64_t> &Out) {
  Out.clear();
  Out.push_back(0);
  std::vector<uint64_t> Current{0};
  for (unsigned Size = 1; Size <= std::min(Bound, M); ++Size) {
    std::vector<uint64_t> Next;
    for (uint64_t S : Current) {
      unsigned Lowest =
          S == 0 ? M : static_cast<unsigned>(__builtin_ctzll(S));
      for (unsigned B = 0; B < Lowest; ++B)
        Next.push_back(S | (uint64_t(1) << B));
    }
    for (uint64_t S : Next)
      Out.push_back(S);
    Current = std::move(Next);
  }
}
} // namespace

std::vector<VertexId>
layra::optimalBoundedLayer(const AllocationProblem &P,
                           const std::vector<char> &Mask,
                           const std::vector<Weight> &Weights,
                           unsigned Bound) {
  assert(P.Chordal && "bounded layers require a chordal instance");
  assert(Bound >= 1 && "bound must be positive");
  assert(Mask.size() == P.G.numVertices() && "mask size mismatch");
  assert(Weights.size() == P.G.numVertices() && "weights size mismatch");

  const CliqueCover &Cover = P.Cliques;
  CliqueTree Tree = buildCliqueTree(P.G, Cover);
  unsigned NumNodes = Cover.numCliques();

  std::vector<NodeTable> Tables(NumNodes);
  // Masked bags and separators, both sorted by vertex id (canonical order).
  std::vector<std::vector<VertexId>> Sep(NumNodes);
  for (unsigned C = 0; C < NumNodes; ++C) {
    for (VertexId V : Cover.Cliques[C])
      if (Mask[V])
        Tables[C].Bag.push_back(V);
    std::sort(Tables[C].Bag.begin(), Tables[C].Bag.end());
    if (Tables[C].Bag.size() > 64)
      layraFatalError("optimalBoundedLayer: clique exceeds 64 live values");
    for (VertexId V : Tree.Separator[C])
      if (Mask[V])
        Sep[C].push_back(V);
    std::sort(Sep[C].begin(), Sep[C].end());
  }

  // Projection of a bag-subset mask onto a separator, as a mask over the
  // separator's canonical order.  Both lists are sorted by vertex id.
  auto Project = [](const std::vector<VertexId> &Bag, uint64_t SubsetMask,
                    const std::vector<VertexId> &Separator) {
    uint64_t Out = 0;
    size_t BagIdx = 0;
    for (size_t SepIdx = 0; SepIdx < Separator.size(); ++SepIdx) {
      while (BagIdx < Bag.size() && Bag[BagIdx] < Separator[SepIdx])
        ++BagIdx;
      assert(BagIdx < Bag.size() && Bag[BagIdx] == Separator[SepIdx] &&
             "separator vertex missing from bag");
      if (SubsetMask & (uint64_t(1) << BagIdx))
        Out |= uint64_t(1) << SepIdx;
    }
    return Out;
  };

  // Bottom-up sweep (children before parents).
  for (auto It = Tree.TopoOrder.rbegin(); It != Tree.TopoOrder.rend(); ++It) {
    unsigned C = *It;
    NodeTable &T = Tables[C];
    enumerateSubsets(static_cast<unsigned>(T.Bag.size()), Bound, T.States);
    T.Value.assign(T.States.size(), 0);

    // Weight of each bag vertex.
    std::vector<Weight> BagWeight(T.Bag.size());
    for (size_t I = 0; I < T.Bag.size(); ++I)
      BagWeight[I] = Weights[T.Bag[I]];

    for (size_t S = 0; S < T.States.size(); ++S) {
      uint64_t StateMask = T.States[S];
      Weight Total = 0;
      uint64_t Bits = StateMask;
      while (Bits) {
        Total += BagWeight[static_cast<unsigned>(__builtin_ctzll(Bits))];
        Bits &= Bits - 1;
      }
      for (unsigned D : Tree.Children[C]) {
        uint64_t Proj = Project(T.Bag, StateMask, Sep[D]);
        const auto *Found = Tables[D].BestByProjection.find(Proj);
        assert(Found && "separator projection missing from child table");
        Total += Found->first;
      }
      T.Value[S] = Total;
    }

    // Group this node's states by projection onto its parent separator,
    // with the separator weight removed (counted at the parent).
    {
      std::vector<std::pair<uint64_t, std::pair<Weight, uint32_t>>> Agg;
      Agg.reserve(T.States.size());
      for (size_t S = 0; S < T.States.size(); ++S) {
        uint64_t Proj = Project(T.Bag, T.States[S], Sep[C]);
        Weight SepWeight = 0;
        uint64_t Bits = Proj;
        while (Bits) {
          SepWeight += Weights[Sep[C][static_cast<unsigned>(
              __builtin_ctzll(Bits))]];
          Bits &= Bits - 1;
        }
        Agg.push_back(
            {Proj, {T.Value[S] - SepWeight, static_cast<uint32_t>(S)}});
      }
      std::sort(Agg.begin(), Agg.end(),
                [](const auto &A, const auto &B) {
                  if (A.first != B.first)
                    return A.first < B.first;
                  return A.second.first > B.second.first;
                });
      ProjectionIndex &Index = T.BestByProjection;
      Index.Keys.clear();
      Index.Best.clear();
      for (const auto &[Key, ValueIdx] : Agg)
        if (Index.Keys.empty() || Index.Keys.back() != Key) {
          Index.Keys.push_back(Key);
          Index.Best.push_back(ValueIdx);
        }
    }

    // Children's big tables are no longer needed once the parent consumed
    // them -- but reconstruction walks down through BestByProjection and
    // States, so keep those and only drop Value for children.
    for (unsigned D : Tree.Children[C]) {
      Tables[D].Value.clear();
      Tables[D].Value.shrink_to_fit();
    }
  }

  // Reconstruction: pick the best root states and walk choices down via the
  // projection maps.
  std::vector<char> Selected(P.G.numVertices(), 0);
  std::vector<std::pair<unsigned, uint64_t>> Work; // (node, chosen mask)
  for (unsigned C = 0; C < NumNodes; ++C) {
    if (Tree.Parent[C] != ~0u)
      continue;
    const NodeTable &T = Tables[C];
    // Roots keep their Value arrays (nothing consumed them).
    size_t Best = 0;
    for (size_t S = 1; S < T.States.size(); ++S)
      if (T.Value[S] > T.Value[Best])
        Best = S;
    Work.push_back({C, T.States[Best]});
  }
  while (!Work.empty()) {
    auto [C, StateMask] = Work.back();
    Work.pop_back();
    const NodeTable &T = Tables[C];
    uint64_t Bits = StateMask;
    while (Bits) {
      Selected[T.Bag[static_cast<unsigned>(__builtin_ctzll(Bits))]] = 1;
      Bits &= Bits - 1;
    }
    for (unsigned D : Tree.Children[C]) {
      uint64_t Proj = Project(T.Bag, StateMask, Sep[D]);
      const auto *Found = Tables[D].BestByProjection.find(Proj);
      assert(Found && "projection lost during reconstruction");
      Work.push_back({D, Tables[D].States[Found->second]});
    }
  }

  std::vector<VertexId> Out;
  for (VertexId V = 0; V < P.G.numVertices(); ++V)
    if (Selected[V])
      Out.push_back(V);
  return Out;
}
