//===- core/SolverWorkspace.cpp - Reusable solver scratch state ------------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "core/SolverWorkspace.h"

using namespace layra;

namespace {
template <typename T> void release(std::vector<T> &V) {
  std::vector<T>().swap(V);
}
} // namespace

void SolverWorkspace::releaseMemory() {
  release(Stable.Residual);
  release(Stable.RedStack);
  release(Stable.BlueAdjacent);

  release(Chordal.Buckets);
  release(Chordal.Count);
  release(Chordal.Visited);
  release(Chordal.Later);
  release(Chordal.LaterCount);
  release(Chordal.Parent);
  release(Chordal.Flags);
  release(Chordal.MustBeAdjacentTo);

  release(Layered.Candidates);
  release(Layered.Allocated);
  release(Layered.CliqueClosed);
  release(Layered.PerClique);
  release(Layered.LayerWeights);

  release(Step.Nodes);
  release(Step.BagWeight);
  release(Step.SubsetsCurrent);
  release(Step.SubsetsNext);
  release(Step.Selected);
  release(Step.Work);
  release(Step.Agg);

  release(Cluster.Order);
  release(Cluster.Clustered);
  release(Cluster.BlockedAt);

  release(Flow.Potential);
  release(Flow.Dist);
  release(Flow.InArc);
  release(Flow.Heap);

  release(Lp.Tab);
  release(Lp.BasicValue);
  release(Lp.ReducedCost);
  release(Lp.ShiftedUpper);
  release(Lp.State);
  release(Lp.BasicOfRow);

  release(Pipeline.Pinned);
  release(Pipeline.Spilled);

  release(Interference.Point);
  release(Interference.Entry);

  release(ClassSplit.ToGlobal);
  release(ClassSplit.MergedFlags);

  LastClearedCapacity.clear();
  Stats = WorkspaceStats();
}
