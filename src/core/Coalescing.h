//===- core/Coalescing.h - Affinities and conservative coalescing -*- C++ -*-===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Register coalescing support -- the companion problem the paper's
/// conclusion singles out ("studying the interactions with the register
/// coalescing").  Copy instructions and phi operands induce *affinities*
/// (value pairs that would like the same register); this module extracts
/// them, performs conservative (Briggs-test) coalescing on the interference
/// graph before allocation, and biases the tree-scan assignment so that
/// affinity-related values share registers when the coloring allows it.
///
//===----------------------------------------------------------------------===//

#ifndef LAYRA_CORE_COALESCING_H
#define LAYRA_CORE_COALESCING_H

#include "core/AllocationProblem.h"
#include "core/Assignment.h"
#include "ir/Program.h"

#include <vector>

namespace layra {

/// A move-related value pair with the frequency-weighted benefit of
/// assigning both to one register (the cost of the copy otherwise).
struct Affinity {
  ValueId A = kNoValue;
  ValueId B = kNoValue;
  Weight Benefit = 0;
};

/// Extracts affinities from \p F: one per Copy instruction (def, src) with
/// benefit = block frequency, and one per phi operand (def, operand) with
/// benefit = predecessor frequency (a phi is a parallel copy on the edge).
/// Pairs that appear multiple times are merged, benefits summed.
std::vector<Affinity> collectAffinities(const Function &F);

/// Result of coalescing a graph.
struct CoalescingResult {
  /// Representative[v] = the vertex v was merged into (itself if none);
  /// fully path-compressed.
  std::vector<VertexId> Representative;
  /// Number of affinity pairs merged.
  unsigned Merged = 0;
  /// Total benefit of the merged pairs (copy cost removed).
  Weight BenefitRealized = 0;
  /// The coalesced graph: one vertex per representative, weights summed,
  /// edges unioned.  CoalescedIndex[rep] gives the vertex id in this graph.
  Graph Coalesced;
  std::vector<VertexId> CoalescedIndex;
};

/// Conservative (Briggs) coalescing: merges an affinity pair {a, b} only if
/// a and b do not interfere and the merged node would have fewer than
/// \p NumRegisters neighbors of degree >= NumRegisters -- the classical
/// test guaranteeing colorability is never hurt.  Pairs are taken in
/// decreasing benefit order.
CoalescingResult coalesceConservative(const Graph &G,
                                      const std::vector<Affinity> &Affinities,
                                      unsigned NumRegisters);

/// Tree-scan assignment with affinity bias: like assignRegisters, but when
/// several registers are free for a vertex, prefers one already used by an
/// affinity-related neighbor-in-spirit (same-register preference), which
/// removes copies without ever adding spills.
Assignment assignRegistersBiased(const AllocationProblem &P,
                                 const std::vector<char> &Allocated,
                                 const std::vector<Affinity> &Affinities);

/// Static cost of the copies that remain after assignment: the summed
/// benefit of affinities whose endpoints are both allocated but received
/// different registers (plus those with a spilled endpoint, which always
/// cost their benefit).  The metric assignRegistersBiased minimizes
/// greedily.
Weight remainingCopyCost(const std::vector<Affinity> &Affinities,
                         const std::vector<char> &Allocated,
                         const std::vector<unsigned> &RegisterOf);

} // namespace layra

#endif // LAYRA_CORE_COALESCING_H
