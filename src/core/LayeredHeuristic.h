//===- core/LayeredHeuristic.h - LH for general graphs ----------*- C++ -*-===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The layered-heuristic allocator for general (non-chordal) interference
/// graphs (paper §5, Algorithms 5 and 6).  A maximum weighted stable set is
/// NP-hard here, so layers become greedy weight-ordered stable "clusters";
/// the R heaviest clusters are allocated, one register each, which makes the
/// allocated set R-colorable *by construction* even on non-chordal graphs.
///
//===----------------------------------------------------------------------===//

#ifndef LAYRA_CORE_LAYEREDHEURISTIC_H
#define LAYRA_CORE_LAYEREDHEURISTIC_H

#include "core/AllocationProblem.h"

#include <vector>

namespace layra {

class SolverWorkspace;

/// A cluster: a stable set of the interference graph plus its weight.
struct Cluster {
  std::vector<VertexId> Members;
  Weight TotalWeight = 0;
};

/// Paper Algorithm 5: partitions all vertices of \p G into stable clusters.
/// Vertices are considered in decreasing weight order (ties: higher degree
/// first, then lower id); each cluster greedily absorbs every candidate not
/// adjacent to it.  Every vertex ends up in exactly one cluster.  \p WS
/// optionally supplies the order/blocked scratch buffers.
std::vector<Cluster> clusterVertices(const Graph &G,
                                     SolverWorkspace *WS = nullptr);

/// Result of the layered-heuristic allocator, including the register
/// assignment its cluster structure implies.
struct LayeredHeuristicResult {
  AllocationResult Allocation;
  /// Register (cluster rank) per vertex; kNoRegister for spilled vertices.
  std::vector<unsigned> RegisterOf;
  /// Number of clusters formed before truncation to R.
  unsigned NumClusters = 0;

  static constexpr unsigned kNoRegister = ~0u;
};

/// Paper Algorithm 6 on top of Algorithm 5: keeps the R clusters of largest
/// total weight and spills the rest.  Works on chordal and non-chordal
/// instances alike (the paper's LH baseline).  Complexity O(R*(|V|+|E|)).
/// Results are bit-identical with and without a workspace.
LayeredHeuristicResult layeredHeuristicAllocate(const AllocationProblem &P,
                                                SolverWorkspace *WS = nullptr);

} // namespace layra

#endif // LAYRA_CORE_LAYEREDHEURISTIC_H
