//===- core/Delta.h - Warm-start delta allocation ---------------*- C++ -*-===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Delta-solving for JIT resubmissions (paper §6.2; ROADMAP "incremental/
/// warm-start allocation").  A retained \c DeltaBase keeps the expensive
/// round-0 artifacts of a previously solved function -- liveness, spill
/// costs, the chordal problem (interference graph + PEO + clique tree) and
/// the first allocation -- so a resubmission that differs only in ways
/// that provably cannot change the interference structure skips straight
/// past liveness fixpoints, interference construction and MCS.
///
/// Safety is all-or-nothing by design.  computeFunctionDelta() admits a
/// resubmission only when the CFG shape, value count, per-value register
/// classes and every instruction's def/use/phi structure are identical to
/// the base; under that predicate liveness and the interference graph are
/// *provably* equal (spill costs and live-interval costs may still differ
/// through block frequencies, which is exactly the hot JIT case:
/// recompilation after new profile counts).  Anything else -- an added
/// instruction, a changed edge, a renamed class -- is rejected and the
/// caller falls back to a full solve.  The fallback is not a degraded
/// mode: the delta path must produce byte-identical reports to the full
/// path (fuzz/Oracles.cpp `delta-vs-full` enforces this), so rejecting is
/// always correct, just slower.
///
/// Why whole-problem reuse instead of patching changed regions only: the
/// MCS elimination order is sensitive to vertex *insertion order* and
/// tie-breaking, so splicing rebuilt subgraphs into a retained PEO cannot
/// reproduce the bytes a from-scratch solve emits.  Provable wholesale
/// reuse keeps the byte-equality contract checkable; the changed-block set
/// still scopes the recomputation that does happen (costs and intervals
/// are linear passes, the parts we skip are the superlinear ones).
///
//===----------------------------------------------------------------------===//

#ifndef LAYRA_CORE_DELTA_H
#define LAYRA_CORE_DELTA_H

#include "core/AllocationProblem.h"
#include "ir/Liveness.h"
#include "ir/Program.h"
#include "ir/Target.h"

#include <optional>
#include <string>
#include <vector>

namespace layra {

/// Outcome of comparing a resubmitted function against a retained base.
struct FunctionDelta {
  /// True when the resubmission is structurally identical to the base
  /// (same CFG, values, classes, defs/uses/phis) and the delta path may
  /// reuse the base's liveness and interference structure wholesale.
  bool Compatible = false;
  /// Blocks whose content hash differs from the base (any field,
  /// including frequencies and opcode kinds).  Empty + Compatible means
  /// the resubmission is a byte-level duplicate of the base.
  std::vector<unsigned> ChangedBlocks;
  /// First structural mismatch when !Compatible (diagnostics only).
  std::string Reason;
};

/// Compares \p New against \p Base block by block.  Both functions must be
/// valid; they are typically strict SSA (the pipeline's input form).
FunctionDelta computeFunctionDelta(const Function &Base, const Function &New);

/// Retained artifacts of one solved base function, captured by the
/// pipeline on request (PipelineDeltaContext::Capture) and kept in the
/// BatchDriver's bounded base registry.
struct DeltaBase {
  /// The base function in the exact SSA form the pipeline solved.
  Function Ssa{"<base>"};
  /// Base liveness (valid whenever the capture completed).
  std::optional<Liveness> Live;
  /// Base spill costs, aligned with Ssa's values.
  std::vector<Weight> Costs;
  /// The round-0 allocation problem at the base's budgets.
  AllocationProblem Problem;
  /// Allocator that produced Round0 (PipelineOptions::AllocatorName).
  /// Kept as a name so core/ does not depend on alloc/.
  std::string AllocatorName;
  /// Result of the first allocation executed on Problem.
  AllocationResult Round0;
  bool HasRound0 = false;
};

/// Builds the round-0 problem for \p F from \p Base without running
/// liveness, interference construction or MCS.  Returns false (leaving
/// \p Out untouched) when the delta is structurally incompatible -- the
/// caller must fall back to a full buildSsaProblem().
///
/// On success \p ExactRound0 reports whether \p Out is *identical* to
/// Base.Problem (equal recomputed costs and equal budgets): in that case
/// a caller using Base.AllocatorName may reuse Base.Round0 instead of
/// allocating, because allocateProblem is a pure function of the problem.
bool buildDeltaProblem(const DeltaBase &Base, const Function &F,
                       const TargetDesc &Target,
                       const std::vector<unsigned> &Budgets,
                       AllocationProblem &Out, bool &ExactRound0);

/// Optional delta channel of one runAllocationPipeline() call.  At most
/// one of Base/Capture is set by the driver: Base feeds the warm-start
/// path, Capture asks the pipeline to retain this run's round-0
/// artifacts for future deltas.
struct PipelineDeltaContext {
  /// Warm-start source; null for a plain run.
  const DeltaBase *Base = nullptr;
  /// When non-null, filled with this run's base artifacts.
  DeltaBase *Capture = nullptr;
  /// Out: the round-0 problem came from buildDeltaProblem().
  bool UsedDelta = false;
  /// Out: the round-0 allocation was reused from Base->Round0.
  bool WarmStarted = false;
};

} // namespace layra

#endif // LAYRA_CORE_DELTA_H
