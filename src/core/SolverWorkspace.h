//===- core/SolverWorkspace.h - Reusable solver scratch state ---*- C++ -*-===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A SolverWorkspace owns every piece of scratch state the allocation hot
/// path would otherwise reallocate per layer and per task: candidate masks
/// and weight vectors (core/Layered), Frank's-algorithm residuals
/// (graph/StableSet), MCS buckets and later-neighbor buffers
/// (graph/Chordal), clique-tree DP tables (core/StepLayer), shortest-path
/// state of the residual network (flow/MinCostFlow), the simplex tableau
/// (lp/Simplex), cluster buffers (core/LayeredHeuristic) and the pipeline's
/// pin/spill flags (alloc/Pipeline).
///
/// The layered allocator is polynomial precisely because it re-solves a
/// bounded subproblem per layer; without reuse, each of those R solves --
/// and each of the thousands of per-function tasks a BatchDriver worker
/// executes -- rebuilds the same vectors from cold heap memory.  The
/// workspace applies the clear-don't-free discipline: buffers are
/// `assign`ed or `clear`ed to a defined state on every checkout, so results
/// are bit-identical to fresh-allocation runs, but the capacity (and the
/// warm cache lines under it) survives from one layer or task to the next.
///
/// Usage contract:
///  - A workspace is *not* thread-safe: one workspace per thread.  The
///    BatchDriver keeps one per pool worker so consecutive tasks on a
///    worker reuse the same arenas.
///  - Every entry point that accepts a `SolverWorkspace *` treats `nullptr`
///    as "use a private local workspace", so results never depend on
///    whether a workspace was supplied.
///  - Scratch members are namespaced per subsystem; a subsystem must leave
///    no dangling references into another's buffers.  Nested solver calls
///    that share one workspace (layered -> stable set, BnB -> ILP -> LP)
///    only ever touch their own sections.
///
/// The Stats block feeds `layra-bench --workspace-stats`: BytesReused
/// counts checkout bytes served from retained capacity, BytesAllocated
/// those that forced fresh heap growth (for push_back-filled buffers the
/// growth is attributed at the *next* checkout of the same buffer, when
/// the final capacity is known).  The split is a capacity-based accounting
/// estimate, not a malloc trace, and with multiple threads it varies run
/// to run with the steal schedule -- which is why it is reported out of
/// band and never part of a DriverReport.
///
//===----------------------------------------------------------------------===//

#ifndef LAYRA_CORE_SOLVERWORKSPACE_H
#define LAYRA_CORE_SOLVERWORKSPACE_H

#include "graph/Graph.h"

#include <algorithm>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

namespace layra {

/// Buffer-checkout accounting of one workspace (see file comment).
struct WorkspaceStats {
  uint64_t BytesReused = 0;    ///< Checkout bytes served from capacity.
  uint64_t BytesAllocated = 0; ///< Checkout bytes requiring heap growth.
  uint64_t Acquires = 0;       ///< Buffer checkouts performed.

  uint64_t bytesTotal() const { return BytesReused + BytesAllocated; }
  /// Fraction of checkout bytes served from retained capacity, in [0, 1].
  double reuseFraction() const {
    uint64_t Total = bytesTotal();
    return Total == 0 ? 0.0 : static_cast<double>(BytesReused) /
                                  static_cast<double>(Total);
  }
  void merge(const WorkspaceStats &Other) {
    BytesReused += Other.BytesReused;
    BytesAllocated += Other.BytesAllocated;
    Acquires += Other.Acquires;
  }
};

/// Owns reusable scratch buffers for the whole solver stack.  Cheap to
/// construct (no allocation until first use); intended to live for many
/// solves.
class SolverWorkspace {
public:
  SolverWorkspace() = default;
  // One workspace per thread; copying would silently duplicate arenas.
  SolverWorkspace(const SolverWorkspace &) = delete;
  SolverWorkspace &operator=(const SolverWorkspace &) = delete;

  /// Checks a buffer out of the workspace with exactly \p N elements, each
  /// set to \p Init.  Reuses retained capacity; never shrinks it.
  template <typename T>
  std::vector<T> &acquire(std::vector<T> &Buffer, size_t N, const T &Init) {
    account(Buffer.capacity(), N, sizeof(T));
    Buffer.assign(N, Init);
    return Buffer;
  }

  /// Checks out an empty buffer that keeps its capacity (for push_back
  /// fills whose final size is unknown).  The fill's heap growth is only
  /// observable at the *next* checkout of the same buffer, so capacity
  /// gained since the previous checkout is attributed to BytesAllocated
  /// then, and only capacity already present last time counts as reused.
  template <typename T>
  std::vector<T> &acquireCleared(std::vector<T> &Buffer) {
    size_t &Prev = LastClearedCapacity[&Buffer];
    size_t Now = Buffer.capacity();
    account(/*Capacity=*/Prev, /*Requested=*/Now, sizeof(T));
    Prev = Now;
    Buffer.clear();
    return Buffer;
  }

  /// Checks out a vector-of-vectors with \p N empty inner vectors, each
  /// keeping its capacity.  (A plain `Outer.assign(N, {})` would free every
  /// inner buffer -- exactly the churn this class exists to avoid.)  Inner
  /// growth is attributed like acquireCleared: capacity gained since a
  /// buffer's previous checkout counts as freshly allocated.
  template <typename T>
  std::vector<std::vector<T>> &
  acquireNested(std::vector<std::vector<T>> &Outer, size_t N) {
    if (Outer.size() > N)
      Outer.resize(N);
    for (std::vector<T> &Inner : Outer) {
      size_t &Prev = LastClearedCapacity[&Inner];
      account(/*Capacity=*/Prev, /*Requested=*/Inner.capacity(), sizeof(T));
      Prev = Inner.capacity();
      Inner.clear();
    }
    Outer.resize(N);
    return Outer;
  }

  /// Checkout accounting.
  WorkspaceStats Stats;

  //===--------------------------------------------------------------------===//
  // Per-subsystem scratch sections.  Members are plain buffers; the owning
  // subsystem defines their meaning and must not rely on contents across
  // checkouts (only on capacity).
  //===--------------------------------------------------------------------===//

  /// Frank's algorithm (graph/StableSet.cpp).
  struct StableSetScratch {
    std::vector<Weight> Residual;
    std::vector<VertexId> RedStack;
    std::vector<char> BlueAdjacent;
  } Stable;

  /// Chordal machinery (graph/Chordal.cpp): MCS buckets, the shared
  /// later-neighbors buffer, and the RTL PEO-check batches.
  struct ChordalScratch {
    std::vector<std::vector<VertexId>> Buckets;
    std::vector<unsigned> Count;
    std::vector<char> Visited;
    std::vector<VertexId> Later;
    std::vector<unsigned> LaterCount;
    std::vector<VertexId> Parent;
    std::vector<char> Flags;
    std::vector<std::vector<VertexId>> MustBeAdjacentTo;
  } Chordal;

  /// Layered allocator per-run state (core/Layered.cpp).
  struct LayeredScratch {
    std::vector<char> Candidates;
    std::vector<char> Allocated;
    std::vector<char> CliqueClosed;
    std::vector<unsigned> PerClique;
    std::vector<Weight> LayerWeights;
  } Layered;

  /// One clique-tree node's DP table (core/StepLayer.cpp).  ProjKeys /
  /// ProjVal / ProjState are the parallel (SoA) sorted projection index
  /// over the parent separator: the binary search touches only the packed
  /// key array, and the DP sum streams only the value array.
  struct StepDpNode {
    std::vector<VertexId> Bag;
    std::vector<uint64_t> States;
    std::vector<Weight> Value;
    std::vector<uint64_t> ProjKeys;
    std::vector<Weight> ProjVal;
    std::vector<uint32_t> ProjState;
    std::vector<VertexId> Sep;
  };

  /// One row of the projection-grouping sort (core/StepLayer.cpp): a flat
  /// struct instead of nested pairs so the sort moves one contiguous
  /// 24-byte record.
  struct StepAggEntry {
    uint64_t Key;
    Weight Val;
    uint32_t State;
  };

  /// Clique-tree DP scratch (core/StepLayer.cpp).
  struct StepLayerScratch {
    std::vector<StepDpNode> Nodes;
    std::vector<Weight> BagWeight;
    std::vector<uint64_t> SubsetsCurrent;
    std::vector<uint64_t> SubsetsNext;
    std::vector<char> Selected;
    std::vector<std::pair<unsigned, uint64_t>> Work;
    std::vector<StepAggEntry> Agg;
  } Step;

  /// Cluster construction (core/LayeredHeuristic.cpp).
  struct ClusterScratch {
    std::vector<VertexId> Order;
    std::vector<char> Clustered;
    std::vector<unsigned> BlockedAt;
  } Cluster;

  /// Successive-shortest-paths state (flow/MinCostFlow.cpp).  Heap is the
  /// binary-heap storage of the Dijkstra priority queue.
  struct FlowScratch {
    std::vector<long long> Potential;
    std::vector<long long> Dist;
    std::vector<unsigned> InArc;
    std::vector<std::pair<long long, unsigned>> Heap;
  } Flow;

  /// Simplex tableau (lp/Simplex.cpp).  Tab is the dense NumRows x
  /// NumColumns working matrix -- by far the largest buffer in this class.
  struct LpScratch {
    std::vector<double> Tab;
    std::vector<double> BasicValue;
    std::vector<double> ReducedCost;
    std::vector<double> ShiftedUpper;
    std::vector<unsigned char> State;
    std::vector<unsigned> BasicOfRow;
  } Lp;

  /// Iterative pipeline flags (alloc/Pipeline.cpp).
  struct PipelineScratch {
    std::vector<char> Pinned;
    std::vector<char> Spilled;
  } Pipeline;

  /// Interference-graph construction (ir/Interference.cpp): the per-point
  /// live-index buffers the backward walk re-fills per instruction.
  struct InterferenceScratch {
    std::vector<VertexId> Point;
    std::vector<VertexId> Entry;
  } Interference;

  /// Per-class decomposition of multi-class instances
  /// (Allocator::allocateProblem): the local->global vertex map of the
  /// class being solved and the merged allocation flags.  Single-class
  /// solves never touch these.
  struct ClassSplitScratch {
    std::vector<VertexId> ToGlobal;
    std::vector<char> MergedFlags;
  } ClassSplit;

  /// Frees every retained buffer (capacity included) and zeroes the stats.
  /// For long-lived owners that want to give arena memory back between
  /// batches; never required for correctness.
  void releaseMemory();

private:
  void account(size_t Capacity, size_t Requested, size_t ElemSize) {
    uint64_t Need = static_cast<uint64_t>(Requested) * ElemSize;
    uint64_t Have = static_cast<uint64_t>(Capacity) * ElemSize;
    Stats.BytesReused += std::min(Need, Have);
    Stats.BytesAllocated += Need > Have ? Need - Have : 0;
    ++Stats.Acquires;
  }

  /// Capacity each acquireCleared/acquireNested buffer had at its previous
  /// checkout, keyed by buffer address.  Direct members have stable
  /// addresses; pooled inner vectors (Step.Nodes, Chordal.Buckets) can
  /// move when their pool grows, which merely re-classifies their retained
  /// capacity as cold once.  Pure accounting state -- never affects buffer
  /// contents.
  std::unordered_map<const void *, size_t> LastClearedCapacity;
};

/// Resolves an optional caller-supplied workspace to a usable one without
/// paying for a fallback that is not needed: the private workspace is only
/// constructed when the caller passed nullptr.  Entry points use
///
///   WorkspaceOrLocal Scope(WS);
///   WS = Scope.get();
///
/// instead of unconditionally constructing a local SolverWorkspace (~40
/// empty vectors zero-initialized per call on paths that run per layer or
/// per branch-and-bound node).
class WorkspaceOrLocal {
public:
  explicit WorkspaceOrLocal(SolverWorkspace *WS)
      : Ptr(WS ? WS : &Own.emplace()) {}

  SolverWorkspace *get() { return Ptr; }
  SolverWorkspace &operator*() { return *Ptr; }
  SolverWorkspace *operator->() { return Ptr; }

private:
  std::optional<SolverWorkspace> Own; // Engaged only on the nullptr path.
  SolverWorkspace *Ptr;
};

} // namespace layra

#endif // LAYRA_CORE_SOLVERWORKSPACE_H
