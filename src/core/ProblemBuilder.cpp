//===- core/ProblemBuilder.cpp - Function -> allocation problem ------------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "core/ProblemBuilder.h"

#include "ir/Interference.h"
#include "ir/Liveness.h"

using namespace layra;

AllocationProblem layra::buildSsaProblem(const Function &F,
                                         const TargetDesc &Target,
                                         unsigned NumRegisters,
                                         SolverWorkspace *WS) {
  assert(verifyFunction(F, /*ExpectSsa=*/true) &&
         "buildSsaProblem requires a strict SSA function");
  Liveness Live(F);
  std::vector<Weight> Costs = computeSpillCosts(F, Target);
  // Chordal constraints come from the maximal cliques, so the per-point
  // live-set dedup is skipped (CollectPointSets = false).
  InterferenceInfo Info =
      buildInterference(F, Live, Costs, WS, /*CollectPointSets=*/false);
  AllocationProblem P =
      AllocationProblem::fromChordalGraph(std::move(Info.G), NumRegisters, WS);
  P.Intervals = computeLiveIntervals(F, Live, Costs);
  return P;
}

AllocationProblem layra::buildGeneralProblem(const Function &F,
                                             const TargetDesc &Target,
                                             unsigned NumRegisters) {
  assert(verifyFunction(F) && "buildGeneralProblem requires a valid function");
  Liveness Live(F);
  std::vector<Weight> Costs = computeSpillCosts(F, Target);
  InterferenceInfo Info = buildInterference(F, Live, Costs);
  AllocationProblem P = AllocationProblem::fromGeneralGraph(
      std::move(Info.G), NumRegisters, std::move(Info.PointLiveSets));
  P.Intervals = computeLiveIntervals(F, Live, Costs);
  return P;
}
