//===- core/ProblemBuilder.cpp - Function -> allocation problem ------------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "core/ProblemBuilder.h"

#include "ir/Interference.h"
#include "ir/Liveness.h"
#include "obs/Trace.h"
#include "support/Compiler.h"

using namespace layra;

/// Trims \p Budgets to the classes \p F actually uses and collects the
/// per-value classes.  A function that never left class 0 produces the
/// one-element budget vector -- the single-class fast path every solver
/// special-cases -- regardless of how many classes the target has.
static void resolveClasses(const Function &F,
                           const std::vector<unsigned> &Budgets,
                           std::vector<unsigned> &UsedBudgets,
                           std::vector<RegClassId> &ClassOf) {
  if (F.maxValueClass() >= Budgets.size())
    layraFatalError("function uses a register class the target (or budget "
                    "vector) does not have");
  UsedBudgets.assign(Budgets.begin(),
                     Budgets.begin() + (F.maxValueClass() + 1));
  ClassOf.clear();
  if (F.maxValueClass() == 0)
    return; // Sparse default: all class 0.
  ClassOf.reserve(F.numValues());
  for (ValueId V = 0; V < F.numValues(); ++V)
    ClassOf.push_back(F.valueClass(V));
}

AllocationProblem layra::buildSsaProblem(const Function &F,
                                         const TargetDesc &Target,
                                         unsigned NumRegisters,
                                         SolverWorkspace *WS) {
  std::vector<unsigned> Budgets =
      resolveClassBudgets(Target, NumRegisters, {});
  return buildSsaProblem(F, Target, Budgets, WS);
}

AllocationProblem layra::buildSsaProblem(const Function &F,
                                         const TargetDesc &Target,
                                         const std::vector<unsigned> &Budgets,
                                         SolverWorkspace *WS,
                                         ProblemBuildArtifacts *Artifacts) {
  assert(verifyFunction(F, /*ExpectSsa=*/true) &&
         "buildSsaProblem requires a strict SSA function");
  PhaseSpan BuildSpan(Phase::ProblemBuild);
  Liveness Live(F);
  std::vector<Weight> Costs = computeSpillCosts(F, Target);
  // Chordal constraints come from the maximal cliques, so the per-point
  // live-set dedup is skipped (CollectPointSets = false).
  InterferenceInfo Info =
      buildInterference(F, Live, Costs, WS, /*CollectPointSets=*/false);
  std::vector<unsigned> UsedBudgets;
  std::vector<RegClassId> ClassOf;
  resolveClasses(F, Budgets, UsedBudgets, ClassOf);
  AllocationProblem P = AllocationProblem::fromChordalGraph(
      std::move(Info.G), std::move(UsedBudgets), std::move(ClassOf), WS);
  P.Intervals = computeLiveIntervals(F, Live, Costs);
  if (Artifacts) {
    Artifacts->Costs = Costs;
    Artifacts->Live.emplace(std::move(Live));
  }
  return P;
}

AllocationProblem layra::buildGeneralProblem(const Function &F,
                                             const TargetDesc &Target,
                                             unsigned NumRegisters) {
  std::vector<unsigned> Budgets =
      resolveClassBudgets(Target, NumRegisters, {});
  return buildGeneralProblem(F, Target, Budgets);
}

AllocationProblem
layra::buildGeneralProblem(const Function &F, const TargetDesc &Target,
                           const std::vector<unsigned> &Budgets) {
  assert(verifyFunction(F) && "buildGeneralProblem requires a valid function");
  PhaseSpan BuildSpan(Phase::ProblemBuild);
  Liveness Live(F);
  std::vector<Weight> Costs = computeSpillCosts(F, Target);
  InterferenceInfo Info = buildInterference(F, Live, Costs);
  std::vector<unsigned> UsedBudgets;
  std::vector<RegClassId> ClassOf;
  resolveClasses(F, Budgets, UsedBudgets, ClassOf);
  AllocationProblem P = AllocationProblem::fromGeneralGraph(
      std::move(Info.G), std::move(UsedBudgets), std::move(ClassOf),
      std::move(Info.PointLiveSets));
  P.Intervals = computeLiveIntervals(F, Live, Costs);
  return P;
}
