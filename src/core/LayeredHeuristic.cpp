//===- core/LayeredHeuristic.cpp - LH for general graphs -------------------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "core/LayeredHeuristic.h"

#include "core/SolverWorkspace.h"

#include <algorithm>
#include <numeric>

using namespace layra;

std::vector<Cluster> layra::clusterVertices(const Graph &G,
                                            SolverWorkspace *WS) {
  WorkspaceOrLocal LocalScope(WS);
  WS = LocalScope.get();
  unsigned N = G.numVertices();
  // Candidates ordered by decreasing weight; the degree tie-break prefers
  // removing more interference early (same intuition as the paper's §4.1
  // biasing), and the id tie-break keeps runs deterministic.
  std::vector<VertexId> &Order =
      WS->acquire(WS->Cluster.Order, N, VertexId(0));
  std::iota(Order.begin(), Order.end(), 0);
  std::sort(Order.begin(), Order.end(), [&](VertexId A, VertexId B) {
    if (G.weight(A) != G.weight(B))
      return G.weight(A) > G.weight(B);
    if (G.degree(A) != G.degree(B))
      return G.degree(A) > G.degree(B);
    return A < B;
  });

  std::vector<char> &Clustered = WS->acquire(WS->Cluster.Clustered, N, char(0));
  // Per-round scratch: vertices excluded from the cluster being built
  // because they are adjacent to a chosen member.  Epoch-stamped to avoid
  // re-clearing.
  std::vector<unsigned> &BlockedAt =
      WS->acquire(WS->Cluster.BlockedAt, N, ~0u);
  std::vector<Cluster> Clusters;

  unsigned Remaining = N;
  unsigned Round = 0;
  while (Remaining > 0) {
    Cluster C;
    // Walk candidates in weight order; greedily absorb every vertex not
    // adjacent to the cluster so far (paper Algorithm 5's inner loop).
    for (VertexId V : Order) {
      if (Clustered[V] || BlockedAt[V] == Round)
        continue;
      C.Members.push_back(V);
      C.TotalWeight += G.weight(V);
      Clustered[V] = 1;
      --Remaining;
      for (VertexId U : G.neighbors(V))
        BlockedAt[U] = Round;
    }
    assert(!C.Members.empty() && "cluster round made no progress");
    assert(G.isStableSet(C.Members) && "cluster is not a stable set");
    Clusters.push_back(std::move(C));
    ++Round;
  }
  return Clusters;
}

LayeredHeuristicResult
layra::layeredHeuristicAllocate(const AllocationProblem &P,
                                SolverWorkspace *WS) {
  std::vector<Cluster> Clusters = clusterVertices(P.graph(), WS);

  LayeredHeuristicResult Out;
  Out.NumClusters = static_cast<unsigned>(Clusters.size());

  // Paper Algorithm 6: keep the R heaviest clusters.  Stable sort on weight
  // keeps earlier (greedier, typically larger) clusters on ties.
  std::stable_sort(Clusters.begin(), Clusters.end(),
                   [](const Cluster &A, const Cluster &B) {
                     return A.TotalWeight > B.TotalWeight;
                   });
  if (Clusters.size() > P.uniformBudget())
    Clusters.resize(P.uniformBudget());

  std::vector<char> Flags(P.graph().numVertices(), 0);
  Out.RegisterOf.assign(P.graph().numVertices(),
                        LayeredHeuristicResult::kNoRegister);
  for (unsigned Reg = 0; Reg < Clusters.size(); ++Reg)
    for (VertexId V : Clusters[Reg].Members) {
      Flags[V] = 1;
      Out.RegisterOf[V] = Reg;
    }
  Out.Allocation = AllocationResult::fromFlags(P.graph(), std::move(Flags));
  return Out;
}
