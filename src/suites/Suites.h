//===- suites/Suites.h - Synthetic benchmark suites -------------*- C++ -*-===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic synthetic stand-ins for the paper's proprietary benchmark
/// inputs (DESIGN.md §4 documents the substitution):
///  - spec2000int : SPEC CPU 2000int (12 programs, larger functions);
///  - eembc       : EEMBC (20 small loop-heavy kernels);
///  - lao-kernels : STMicro LAO kernels (12 tiny, deeply nested kernels);
///  - specjvm98   : SPEC JVM98 (9 apps x many methods; evaluated non-SSA).
/// Every suite is a pure function of its name: programs are generated from
/// seeds derived by hashing, so all experiments reproduce bit-for-bit.
///
//===----------------------------------------------------------------------===//

#ifndef LAYRA_SUITES_SUITES_H
#define LAYRA_SUITES_SUITES_H

#include "core/AllocationProblem.h"
#include "ir/Program.h"
#include "ir/Target.h"

#include <string>
#include <vector>

namespace layra {

/// One benchmark program: a named bag of functions.
struct SuiteProgram {
  std::string Name;
  std::vector<Function> Functions;
};

/// A named collection of programs.
struct Suite {
  std::string Name;
  std::vector<SuiteProgram> Programs;

  unsigned numFunctions() const;
};

/// The four synthetic suites (see file comment).
Suite makeSpec2000Int();
Suite makeEembc();
Suite makeLaoKernels();
Suite makeSpecJvm98();
/// Mixed register classes: loop kernels whose variable pools split between
/// the default class and a second (VFP-like) class, for multi-class
/// targets (armv7-vfp, st231-br).  Values of different classes never
/// pressure each other's budgets.
Suite makeMixedClasses();

/// Suite lookup by name ("spec2000int", "eembc", "lao-kernels",
/// "specjvm98", "mixed-classes"); aborts on unknown names.
Suite makeSuite(const std::string &Name);

/// All names makeSuite accepts (in a stable presentation order).  Lets
/// front ends validate user input before makeSuite's fatal-error path.
std::vector<std::string> allSuiteNames();

/// An allocation problem labelled with its origin.
struct NamedProblem {
  std::string Program;
  std::string Function;
  AllocationProblem P;
};

/// Converts every function of \p S to SSA and builds chordal instances
/// (paper §6.1 methodology) with \p NumRegisters registers.
std::vector<NamedProblem> chordalProblems(const Suite &S,
                                          const TargetDesc &Target,
                                          unsigned NumRegisters);

/// Builds general (non-SSA) instances of every function (paper §6.2).
std::vector<NamedProblem> generalProblems(const Suite &S,
                                          const TargetDesc &Target,
                                          unsigned NumRegisters);

} // namespace layra

#endif // LAYRA_SUITES_SUITES_H
