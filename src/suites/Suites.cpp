//===- suites/Suites.cpp - Synthetic benchmark suites ----------------------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "suites/Suites.h"

#include "core/ProblemBuilder.h"
#include "ir/Dominators.h"
#include "ir/Liveness.h"
#include "ir/LoopInfo.h"
#include "ir/ProgramGen.h"
#include "ir/SsaBuilder.h"
#include "support/Compiler.h"
#include "support/Random.h"

using namespace layra;

/// Register-pressure ceiling for generated functions.  Mirrors the moderate
/// pressure of the paper's compiler-emitted functions and keeps the exact
/// ILP baseline provable everywhere (the clique-tree DP state space grows
/// with MaxLive; see alloc/OptimalBnB.cpp).
static constexpr unsigned kMaxLiveCap = 24;

unsigned Suite::numFunctions() const {
  unsigned Total = 0;
  for (const SuiteProgram &P : Programs)
    Total += static_cast<unsigned>(P.Functions.size());
  return Total;
}

/// Deterministic 64-bit seed from a string (FNV-1a folded through
/// SplitMix64 for avalanche).
static uint64_t seedOf(const std::string &Text) {
  uint64_t H = 0xcbf29ce484222325ULL;
  for (unsigned char C : Text) {
    H ^= C;
    H *= 0x100000001b3ULL;
  }
  return splitMix64(H);
}

/// Generates a program's functions and annotates loop frequencies.
static SuiteProgram makeProgram(const std::string &SuiteName,
                                const std::string &ProgramName,
                                unsigned NumFunctions,
                                const ProgramGenOptions &Shape) {
  SuiteProgram Out;
  Out.Name = ProgramName;
  Rng R(seedOf(SuiteName + "/" + ProgramName));
  for (unsigned FI = 0; FI < NumFunctions; ++FI) {
    // Jitter the shape a little per function so a program is not N copies
    // of the same silhouette, and regenerate the rare function whose
    // register pressure exceeds the cap (keeping the least-pressured
    // attempt as a fallback).
    Function Best("placeholder");
    unsigned BestMaxLive = ~0u;
    for (unsigned Attempt = 0; Attempt < 6; ++Attempt) {
      ProgramGenOptions Opt = Shape;
      Opt.NumVars +=
          static_cast<unsigned>(R.nextBelow(Shape.NumVars / 2 + 1));
      Opt.MaxBlocks +=
          static_cast<unsigned>(R.nextBelow(Shape.MaxBlocks / 2 + 1));
      Function F = generateFunction(
          R, Opt, ProgramName + "_f" + std::to_string(FI));
      unsigned MaxLive = Liveness(F).maxLive(F);
      if (MaxLive < BestMaxLive) {
        BestMaxLive = MaxLive;
        Best = std::move(F);
      }
      if (BestMaxLive <= kMaxLiveCap)
        break;
    }
    DominatorTree Dom(Best);
    LoopInfo Loops(Best, Dom);
    Loops.annotate(Best);
    Out.Functions.push_back(std::move(Best));
  }
  return Out;
}

Suite layra::makeSpec2000Int() {
  // Few programs, bigger control flow, moderate loop nesting: the shape of
  // general-purpose integer codes.
  static const char *Names[] = {"gzip",    "vpr",  "gcc",  "mcf",
                                "crafty",  "parser", "eon",  "perlbmk",
                                "gap",     "vortex", "bzip2", "twolf"};
  ProgramGenOptions Shape;
  Shape.NumVars = 26;
  Shape.NumParams = 5;
  Shape.MaxBlocks = 48;
  Shape.MaxNesting = 3;
  Shape.ExprsPerBlockMin = 2;
  Shape.ExprsPerBlockMax = 6;
  Shape.LoopProb = 0.28;
  Shape.IfProb = 0.40;

  Suite S;
  S.Name = "spec2000int";
  for (const char *Name : Names)
    S.Programs.push_back(makeProgram(S.Name, Name, /*NumFunctions=*/8, Shape));
  return S;
}

Suite layra::makeEembc() {
  // Many small kernels dominated by loops.
  static const char *Names[] = {
      "a2time", "aifftr", "aifirf", "aiifft", "basefp", "bitmnp", "cacheb",
      "canrdr", "idctrn", "iirflt", "matrix", "pntrch", "puwmod", "rspeed",
      "tblook", "ttsprk", "cjpeg",  "djpeg",  "rgbcmy", "rotate"};
  ProgramGenOptions Shape;
  Shape.NumVars = 16;
  Shape.NumParams = 4;
  Shape.MaxBlocks = 24;
  Shape.MaxNesting = 3;
  Shape.ExprsPerBlockMin = 2;
  Shape.ExprsPerBlockMax = 5;
  Shape.LoopProb = 0.45;
  Shape.IfProb = 0.25;

  Suite S;
  S.Name = "eembc";
  for (const char *Name : Names)
    S.Programs.push_back(makeProgram(S.Name, Name, /*NumFunctions=*/3, Shape));
  return S;
}

Suite layra::makeLaoKernels() {
  // Tiny, deeply nested signal-processing kernels (the paper notes this
  // suite is "made of small benchmarks" and thus sensitive to a single bad
  // allocation choice).
  static const char *Names[] = {"fir",     "iir",    "fft",   "dct",
                                "viterbi", "huffman", "sad",  "quantize",
                                "autcor",  "conven",  "fbital", "latanal"};
  ProgramGenOptions Shape;
  Shape.NumVars = 12;
  Shape.NumParams = 3;
  Shape.MaxBlocks = 16;
  Shape.MaxNesting = 4;
  Shape.ExprsPerBlockMin = 2;
  Shape.ExprsPerBlockMax = 5;
  Shape.LoopProb = 0.55;
  Shape.IfProb = 0.15;

  Suite S;
  S.Name = "lao-kernels";
  for (const char *Name : Names)
    S.Programs.push_back(makeProgram(S.Name, Name, /*NumFunctions=*/2, Shape));
  return S;
}

Suite layra::makeSpecJvm98() {
  // JIT-compiled methods: evaluated on the raw non-SSA form (JikesRVM's IR
  // is not SSA), which yields general, mostly non-chordal graphs.
  static const char *Names[] = {"check",     "compress", "jess",
                                "raytrace",  "db",       "javac",
                                "mpegaudio", "mtrt",     "jack"};
  ProgramGenOptions Shape;
  Shape.NumVars = 18; // Moderate pool: reuse creates multi-def live ranges
                      // whose merges make a third of the graphs non-chordal.
  Shape.NumParams = 4;
  Shape.MaxBlocks = 28;
  Shape.MaxNesting = 3;
  Shape.ExprsPerBlockMin = 2;
  Shape.ExprsPerBlockMax = 6;
  Shape.LoopProb = 0.30;
  Shape.IfProb = 0.38;
  Shape.CopyProb = 0.15; // JIT IRs are move-rich.

  // A JIT method population is dominated by tiny methods -- accessors,
  // wrappers, straight-line glue -- with only a small hot tail carrying
  // real register pressure.  Method-counting statistics (§2.3's inclusion
  // rate) depend on that skew, while cost-sum figures (Figs. 14-15) barely
  // notice it: near-pressureless methods contribute ~0 spill cost to every
  // allocator.
  ProgramGenOptions SmallShape;
  SmallShape.NumVars = 6;
  SmallShape.NumParams = 2;
  SmallShape.MaxBlocks = 6;
  SmallShape.MaxNesting = 1;
  SmallShape.ExprsPerBlockMin = 1;
  SmallShape.ExprsPerBlockMax = 3;
  SmallShape.LoopProb = 0.15;
  SmallShape.IfProb = 0.30;
  SmallShape.CopyProb = 0.15;

  Suite S;
  S.Name = "specjvm98";
  for (const char *Name : Names) {
    SuiteProgram Prog = makeProgram(S.Name, Name, /*NumFunctions=*/10, Shape);
    SuiteProgram Small = makeProgram(S.Name, std::string(Name) + "#small",
                                     /*NumFunctions=*/90, SmallShape);
    for (Function &F : Small.Functions)
      Prog.Functions.push_back(std::move(F));
    S.Programs.push_back(std::move(Prog));
  }
  return S;
}

Suite layra::makeMixedClasses() {
  // Loop kernels over a two-class variable pool: class 0 ("gpr"-like)
  // and class 1 (the second file of armv7-vfp / st231-br).  Pressure
  // builds independently per file; sweeping --regs squeezes class 0 while
  // class 1 keeps its architectural budget unless --class-regs says
  // otherwise.
  static const char *Names[] = {"mix_fir",  "mix_fft",  "mix_mac",
                                "mix_conv", "mix_blend", "mix_dot",
                                "mix_norm", "mix_warp"};
  ProgramGenOptions Shape;
  Shape.NumVars = 18;
  Shape.NumParams = 4;
  Shape.MaxBlocks = 24;
  Shape.MaxNesting = 3;
  Shape.ExprsPerBlockMin = 2;
  Shape.ExprsPerBlockMax = 5;
  Shape.LoopProb = 0.40;
  Shape.IfProb = 0.28;
  Shape.CopyProb = 0.12;
  Shape.NumClasses = 2;
  Shape.AltClassProb = 0.40;

  Suite S;
  S.Name = "mixed-classes";
  for (const char *Name : Names)
    S.Programs.push_back(makeProgram(S.Name, Name, /*NumFunctions=*/3, Shape));
  return S;
}

namespace {
/// The single name -> factory table both makeSuite and allSuiteNames
/// derive from, so the two can never drift apart.
struct SuiteEntry {
  const char *Name;
  Suite (*Factory)();
};
constexpr SuiteEntry kSuiteTable[] = {
    {"spec2000int", makeSpec2000Int},
    {"eembc", makeEembc},
    {"lao-kernels", makeLaoKernels},
    {"specjvm98", makeSpecJvm98},
    {"mixed-classes", makeMixedClasses},
};
} // namespace

std::vector<std::string> layra::allSuiteNames() {
  std::vector<std::string> Names;
  for (const SuiteEntry &Entry : kSuiteTable)
    Names.push_back(Entry.Name);
  return Names;
}

Suite layra::makeSuite(const std::string &Name) {
  for (const SuiteEntry &Entry : kSuiteTable)
    if (Name == Entry.Name)
      return Entry.Factory();
  layraFatalError("unknown suite name");
}

std::vector<NamedProblem> layra::chordalProblems(const Suite &S,
                                                 const TargetDesc &Target,
                                                 unsigned NumRegisters) {
  std::vector<NamedProblem> Out;
  for (const SuiteProgram &Prog : S.Programs)
    for (const Function &F : Prog.Functions) {
      SsaConversion Ssa = convertToSsa(F);
      Out.push_back({Prog.Name, F.name(),
                     buildSsaProblem(Ssa.Ssa, Target, NumRegisters)});
    }
  return Out;
}

std::vector<NamedProblem> layra::generalProblems(const Suite &S,
                                                 const TargetDesc &Target,
                                                 unsigned NumRegisters) {
  std::vector<NamedProblem> Out;
  for (const SuiteProgram &Prog : S.Programs)
    for (const Function &F : Prog.Functions)
      Out.push_back({Prog.Name, F.name(),
                     buildGeneralProblem(F, Target, NumRegisters)});
  return Out;
}
