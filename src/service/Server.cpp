//===- service/Server.cpp - Long-running allocation server -----------------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "service/Server.h"

#include "alloc/Allocator.h"
#include "driver/BatchDriver.h"
#include "driver/ReportIO.h"
#include "ir/Parser.h"
#include "obs/EventLog.h"
#include "obs/Metrics.h"
#include "obs/RequestTrace.h"
#include "support/Socket.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <map>
#include <mutex>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace layra;

namespace {

/// Accept-loop poll granularity: the latency bound on noticing a stop
/// request while no connections arrive.
constexpr int kAcceptPollMs = 100;

double msSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration_cast<
             std::chrono::duration<double, std::milli>>(
             std::chrono::steady_clock::now() - Start)
      .count();
}

double msBetween(std::chrono::steady_clock::time_point From,
                 std::chrono::steady_clock::time_point To) {
  return std::chrono::duration<double, std::milli>(To - From).count();
}

const char *requestKindName(ServiceRequest::Kind K) {
  switch (K) {
  case ServiceRequest::Kind::Ping:
    return "ping";
  case ServiceRequest::Kind::Stats:
    return "stats";
  case ServiceRequest::Kind::Allocate:
    return "allocate";
  case ServiceRequest::Kind::SubmitIr:
    return "submit_ir";
  }
  return "unknown";
}

/// One live connection.  Reader threads and the dispatcher share it via
/// shared_ptr: the descriptor must outlive the reader when queued requests
/// still reference it at disconnect time.  Responses -- including error
/// replies, which readers route through the queue -- are written only by
/// the single dispatcher thread, so no write lock is needed: frames of one
/// connection cannot interleave by construction.
struct Connection {
  SocketFd Fd;
  uint64_t Id = 0;
};

struct QueuedWork {
  std::shared_ptr<Connection> Conn;
  ServiceRequest Req;
  /// Pre-built response for requests that failed before reaching the
  /// dispatcher (parse/framing errors).  Non-empty = write this verbatim
  /// instead of executing Req.  Routing errors through the queue keeps the
  /// protocol's per-connection response ordering intact for pipelining
  /// clients: an error reply must not overtake the response of an earlier,
  /// still-executing request.
  std::string PrebuiltResponse;
  /// Close the connection's write side after responding (framing errors).
  bool CloseAfter = false;
  /// When the request's frame finished arriving: the trace epoch every
  /// span offset is measured from.
  std::chrono::steady_clock::time_point AcceptTime;
  /// When parsing finished and the reader enqueued the work; the gap to
  /// the dispatcher's dequeue is the queue_wait span.
  std::chrono::steady_clock::time_point EnqueueTime;
};

} // namespace

std::string layra::makeStatsResponse(const ServerStats &S,
                                     const std::string &TraceId) {
  JsonValue Doc = JsonValue::object();
  Doc.set("schema", kStatsSchema);
  Doc.set("protocol", kServeProtocolVersion);
  Doc.set("uptime_ms", S.UptimeMs);
  Doc.set("threads", S.Threads);
  JsonValue Requests = JsonValue::object();
  Requests.set("total", S.RequestsTotal);
  Requests.set("allocate", S.RequestsAllocate);
  Requests.set("submit_ir", S.RequestsSubmitIr);
  Requests.set("stats", S.RequestsStats);
  Requests.set("ping", S.RequestsPing);
  Requests.set("failed", S.RequestsFailed);
  Doc.set("requests", std::move(Requests));
  JsonValue Connections = JsonValue::object();
  Connections.set("accepted", S.ConnectionsAccepted);
  Connections.set("rejected", S.ConnectionsRejected);
  Connections.set("active", S.ConnectionsActive);
  Doc.set("connections", std::move(Connections));
  JsonValue Cache = JsonValue::object();
  Cache.set("entries", S.CacheEntries);
  Cache.set("capacity", S.CacheCapacity);
  Cache.set("hits", S.CacheHits);
  Cache.set("misses", S.CacheMisses);
  Cache.set("evictions", S.CacheEvictions);
  double Classified = static_cast<double>(S.CacheHits + S.CacheMisses);
  Cache.set("hit_rate", Classified > 0
                            ? static_cast<double>(S.CacheHits) / Classified
                            : 0.0);
  Doc.set("cache", std::move(Cache));
  JsonValue Queue = JsonValue::object();
  Queue.set("depth", S.QueueDepth);
  Queue.set("max_depth", S.QueueMaxDepth);
  Queue.set("capacity", S.QueueCapacity);
  Doc.set("queue", std::move(Queue));
  JsonValue Latency = JsonValue::object();
  Latency.set("service_ms_p50", S.ServiceMsP50);
  Latency.set("service_ms_p95", S.ServiceMsP95);
  Latency.set("service_ms_p99", S.ServiceMsP99);
  Latency.set("samples", S.ServiceSamples);
  // Cumulative histogram in le/count form (Prometheus-style): each entry
  // says "this many samples took at most le_ms".  Only occupied buckets are
  // serialized, so the array stays small however wide the geometry is.
  JsonValue Buckets = JsonValue::array();
  uint64_t Cumulative = 0;
  for (size_t I = 0; I < S.ServiceLatency.Buckets.size(); ++I) {
    if (S.ServiceLatency.Buckets[I] == 0)
      continue;
    Cumulative += S.ServiceLatency.Buckets[I];
    JsonValue Bucket = JsonValue::object();
    Bucket.set("le_ms", hist::ticksToMs(
                            double(hist::bucketHighTicks(unsigned(I)))));
    Bucket.set("count", Cumulative);
    Buckets.push(std::move(Bucket));
  }
  Latency.set("histogram", std::move(Buckets));
  Doc.set("latency", std::move(Latency));
  JsonValue Dispatcher = JsonValue::object();
  Dispatcher.set("busy_ms", S.DispatcherBusyMs);
  Dispatcher.set("utilization", S.DispatcherUtilization);
  Doc.set("dispatcher", std::move(Dispatcher));
  // The trace echo, like everywhere else, lands after every existing
  // member so untraced stats responses keep their exact bytes.
  if (!TraceId.empty()) {
    JsonValue TraceDoc = JsonValue::object();
    TraceDoc.set("id", TraceId);
    Doc.set("trace", std::move(TraceDoc));
  }
  return Doc.dump(2) + "\n";
}

std::string layra::makeMetricsExposition(const ServerStats &S) {
  // Server-level stats rendered through the same exposition machinery as
  // the registry metrics, so one scrape sees one consistent format.
  MetricsSnapshot Snap;
  Snap.Counters = {
      {"layra.serve.requests.total", S.RequestsTotal},
      {"layra.serve.requests.allocate", S.RequestsAllocate},
      {"layra.serve.requests.submit_ir", S.RequestsSubmitIr},
      {"layra.serve.requests.stats", S.RequestsStats},
      {"layra.serve.requests.ping", S.RequestsPing},
      {"layra.serve.requests.failed", S.RequestsFailed},
      {"layra.serve.connections.accepted", S.ConnectionsAccepted},
      {"layra.serve.connections.rejected", S.ConnectionsRejected},
      {"layra.serve.cache.hits", S.CacheHits},
      {"layra.serve.cache.misses", S.CacheMisses},
      {"layra.serve.cache.evictions", S.CacheEvictions},
  };
  double Classified = double(S.CacheHits + S.CacheMisses);
  Snap.Gauges = {
      {"layra.serve.uptime_ms", S.UptimeMs},
      {"layra.serve.threads", double(S.Threads)},
      {"layra.serve.connections.active", double(S.ConnectionsActive)},
      {"layra.serve.cache.entries", double(S.CacheEntries)},
      {"layra.serve.cache.capacity", double(S.CacheCapacity)},
      {"layra.serve.cache.hit_rate",
       Classified > 0 ? double(S.CacheHits) / Classified : 0.0},
      {"layra.serve.queue.depth", double(S.QueueDepth)},
      {"layra.serve.queue.max_depth", double(S.QueueMaxDepth)},
      {"layra.serve.queue.capacity", double(S.QueueCapacity)},
      {"layra.serve.dispatcher.busy_ms", S.DispatcherBusyMs},
      {"layra.serve.dispatcher.utilization", S.DispatcherUtilization},
  };
  if (S.ServiceLatency.Count > 0) {
    HistogramSnapshot Service = S.ServiceLatency;
    Service.Name = "layra.serve.service_ms";
    Snap.Histograms.push_back(std::move(Service));
  }
  return Snap.toPrometheusText() +
         MetricsRegistry::global().snapshot().toPrometheusText();
}

//===----------------------------------------------------------------------===//
// Server::Impl
//===----------------------------------------------------------------------===//

struct Server::Impl {
  explicit Impl(ServerOptions Options)
      : Opt(std::move(Options)), Driver(Opt.Threads) {
    Driver.setCacheCapacity(Opt.CacheCapacity);
    CachedCache = Driver.pipelineCacheCounters();
  }

  ServerOptions Opt;

  //--- Shared allocation state (dispatcher thread only after start()). ----
  BatchDriver Driver;
  /// Named suites generated once and shared across requests; tiny (there
  /// are four suite names) and dispatcher-private.
  std::map<std::string, Suite> SuiteCache;

  //--- Listeners and threads. ---------------------------------------------
  SocketFd TcpListener;
  SocketFd UnixListener;
  uint16_t BoundTcpPort = 0;
  std::vector<std::thread> AcceptThreads;
  std::thread DispatchThread;
  std::atomic<bool> Started{false};
  std::atomic<bool> Stop{false};
  std::atomic<bool> Drained{false};

  //--- Connection registry. -----------------------------------------------
  std::mutex ConnMutex;
  uint64_t NextConnId = 1;
  std::map<uint64_t, std::shared_ptr<Connection>> Connections;
  std::map<uint64_t, std::thread> ReaderThreads;
  std::vector<uint64_t> FinishedReaders;

  //--- Bounded request queue. ---------------------------------------------
  std::mutex QueueMutex;
  std::condition_variable QueueNotEmpty;
  std::condition_variable QueueNotFull;
  std::deque<QueuedWork> Queue;
  uint64_t QueueMaxDepth = 0;
  /// Readers currently alive; the dispatcher drains until none remain.
  unsigned ActiveReaders = 0;

  //--- Statistics. --------------------------------------------------------
  mutable std::mutex StatsMutex;
  ServerStats Counters; ///< Queue/cache fields are filled on snapshot.
  /// Driver cache counters as of the last dispatched request.  The driver
  /// itself is dispatcher-private after start(), so out-of-band stats()
  /// callers read this published copy instead of racing the driver.
  DriverCacheCounters CachedCache;
  /// Lifetime service-time histogram (log-linear buckets, obs/Metrics.h):
  /// constant memory for a long-lived server, like the ring buffer it
  /// replaces, but without discarding history -- and the same bucket
  /// geometry layra-loadgen uses client-side, so the two ends' percentile
  /// figures are directly comparable.  record() is wait-free, so it lives
  /// outside StatsMutex.
  Histogram ServiceHist;
  /// Wall time the dispatcher spent executing requests (StatsMutex).
  double DispatcherBusyMs = 0;
  std::chrono::steady_clock::time_point StartTime;

  //--- Request tracing (dispatcher thread only). --------------------------
  /// Salt for server-generated trace ids (Opt.TraceIdSalt, or the clock).
  uint64_t TraceSalt = 0;
  /// Sequence for server-generated ids; the dispatcher is the only
  /// generator, so a plain counter suffices.
  uint64_t NextTraceSeq = 1;

  //--- Implementation. ----------------------------------------------------
  bool start(std::string *Error);
  void requestStop();
  void wait();
  void acceptLoop(SocketFd &Listener);
  void readerLoop(std::shared_ptr<Connection> Conn);
  void enqueue(QueuedWork Work);
  void dispatchLoop();
  void writeResponse(Connection &Conn, const std::string &Payload);
  /// Handlers thread an optional RequestTrace: null = untraced request,
  /// and no trace-related work happens at all.
  std::string handleRequest(const ServiceRequest &Req,
                            obs::RequestTrace *Trace);
  std::string handleAllocate(const ServiceRequest &Req,
                             obs::RequestTrace *Trace);
  std::string handleSubmitIr(const ServiceRequest &Req,
                             obs::RequestTrace *Trace);
  std::string runJobs(const std::vector<BatchJob> &Jobs,
                      const ServiceRequest &Req,
                      uint64_t ServerStats::*Counter,
                      obs::RequestTrace *Trace);
  std::string failRequest(const std::string &Message,
                          const obs::RequestTrace *Trace = nullptr);
  /// Target/allocator validation shared by allocate and submit_ir;
  /// returns a non-empty error-response payload on rejection.
  std::string validateCommon(const ServiceRequest &Req,
                             const obs::RequestTrace *Trace);
  /// One slow-request JSON line (full span tree) on Opt.SlowLog.
  void emitSlowRequest(const obs::RequestTrace &Trace, double TotalMs,
                       ServiceRequest::Kind K);
  ServerStats snapshotStats();
  void recordService(double Ms);
  void reapFinishedReaders();
};

bool Server::Impl::start(std::string *Error) {
  if (Opt.UnixPath.empty() && !Opt.EnableTcp) {
    if (Error)
      *Error = "server needs a Unix socket path and/or TCP enabled";
    return false;
  }
  if (Opt.EnableTcp) {
    TcpListener = listenTcp(Opt.TcpHost, Opt.TcpPort, Error);
    if (!TcpListener.valid())
      return false;
    BoundTcpPort = boundTcpPort(TcpListener);
  }
  if (!Opt.UnixPath.empty()) {
    UnixListener = listenUnix(Opt.UnixPath, Error);
    if (!UnixListener.valid()) {
      TcpListener.reset();
      return false;
    }
  }
  StartTime = std::chrono::steady_clock::now();
  TraceSalt = Opt.TraceIdSalt
                  ? Opt.TraceIdSalt
                  : static_cast<uint64_t>(StartTime.time_since_epoch().count());
  Counters.Threads = Driver.numThreads();
  Started = true;
  if (TcpListener.valid())
    AcceptThreads.emplace_back([this] { acceptLoop(TcpListener); });
  if (UnixListener.valid())
    AcceptThreads.emplace_back([this] { acceptLoop(UnixListener); });
  DispatchThread = std::thread([this] { dispatchLoop(); });
  return true;
}

void Server::Impl::requestStop() {
  {
    // Set under the queue lock so no waiter can test its predicate between
    // the flag flip and the notify (the classic lost-wakeup window).
    std::lock_guard<std::mutex> L(QueueMutex);
    if (Stop.exchange(true))
      return;
  }
  obs::EventLog::global().record(obs::EventKind::DrainBegin);
  QueueNotEmpty.notify_all();
  QueueNotFull.notify_all();
  // Unblock readers parked in recv().  SHUT_RD only: responses for queued
  // requests must still go out on the write side.
  std::lock_guard<std::mutex> L(ConnMutex);
  for (auto &Entry : Connections)
    ::shutdown(Entry.second->Fd.fd(), SHUT_RD);
}

void Server::Impl::wait() {
  if (!Started)
    return;
  for (std::thread &T : AcceptThreads)
    if (T.joinable())
      T.join();
  AcceptThreads.clear();
  if (DispatchThread.joinable())
    DispatchThread.join();
  // Dispatcher exit implies every reader has exited; join their handles.
  std::map<uint64_t, std::thread> Readers;
  {
    std::lock_guard<std::mutex> L(ConnMutex);
    Readers.swap(ReaderThreads);
    FinishedReaders.clear();
  }
  for (auto &Entry : Readers)
    if (Entry.second.joinable())
      Entry.second.join();
  TcpListener.reset();
  UnixListener.reset();
  if (!Opt.UnixPath.empty())
    ::unlink(Opt.UnixPath.c_str());
  obs::EventLog::global().record(obs::EventKind::DrainEnd);
  Drained = true;
}

void Server::Impl::reapFinishedReaders() {
  std::lock_guard<std::mutex> L(ConnMutex);
  for (uint64_t Id : FinishedReaders) {
    auto It = ReaderThreads.find(Id);
    if (It != ReaderThreads.end()) {
      It->second.join();
      ReaderThreads.erase(It);
    }
  }
  FinishedReaders.clear();
}

void Server::Impl::acceptLoop(SocketFd &Listener) {
  while (!Stop) {
    bool TimedOut = false;
    SocketFd Fd = acceptConnection(Listener, kAcceptPollMs, &TimedOut);
    // Join reader threads of connections that came and went, so a
    // long-lived server does not accumulate dead thread handles.
    reapFinishedReaders();
    if (!Fd.valid()) {
      if (Stop)
        break;
      // An unexpected accept failure (EMFILE under fd exhaustion, say)
      // leaves the pending connection readable, so poll() would return
      // immediately and this loop would spin hot.  Back off briefly and
      // retry; plain timeouts keep polling at full cadence.
      if (!TimedOut)
        std::this_thread::sleep_for(std::chrono::milliseconds(kAcceptPollMs));
      continue;
    }
    if (Stop)
      break;

    auto Conn = std::make_shared<Connection>();
    Conn->Fd = std::move(Fd);
    bool Reject = false;
    {
      std::lock_guard<std::mutex> L(ConnMutex);
      if (Connections.size() >= Opt.MaxConnections)
        Reject = true;
      else {
        Conn->Id = NextConnId++;
        Connections.emplace(Conn->Id, Conn);
      }
    }
    if (Reject) {
      {
        std::lock_guard<std::mutex> L(StatsMutex);
        ++Counters.ConnectionsRejected;
      }
      std::string Frame =
          encodeFrame(makeErrorResponse("server at its connection limit"));
      sendAllWithTimeout(Conn->Fd.fd(), Frame.data(), Frame.size(),
                         Opt.WriteTimeoutMs);
      continue; // Conn's destructor closes the socket.
    }
    {
      std::lock_guard<std::mutex> L(StatsMutex);
      ++Counters.ConnectionsAccepted;
    }
    // The Stop check and the reader-count increment must be one atomic
    // step under QueueMutex: the dispatcher's exit predicate (Stop, no
    // readers, empty queue) is evaluated under the same lock, so either
    // the dispatcher is already gone -- then Stop is visibly set here and
    // the connection is dropped before it can enqueue anything -- or the
    // increment lands first and the dispatcher drains this reader too.
    bool Drop = false;
    {
      std::lock_guard<std::mutex> QL(QueueMutex);
      if (Stop)
        Drop = true;
      else
        ++ActiveReaders;
    }
    if (Drop) {
      std::lock_guard<std::mutex> L(ConnMutex);
      Connections.erase(Conn->Id);
      break; // Conn's destructor closes the socket; the client sees EOF.
    }
    std::lock_guard<std::mutex> L(ConnMutex);
    ReaderThreads.emplace(Conn->Id,
                          std::thread([this, Conn] { readerLoop(Conn); }));
  }
}

void Server::Impl::enqueue(QueuedWork Work) {
  // Blocks while the queue is full: backpressure, by construction.  Safe
  // even during a drain: the dispatcher keeps popping until every reader
  // (including this one) has exited.
  bool Saturated = false;
  {
    std::unique_lock<std::mutex> L(QueueMutex);
    Saturated = Queue.size() >= Opt.QueueCapacity;
    QueueNotFull.wait(L,
                      [this] { return Queue.size() < Opt.QueueCapacity; });
    Queue.push_back(std::move(Work));
    QueueMaxDepth = std::max<uint64_t>(QueueMaxDepth, Queue.size());
  }
  QueueNotEmpty.notify_one();
  if (Saturated)
    obs::EventLog::global().record(obs::EventKind::QueueSaturated,
                                   double(Opt.QueueCapacity));
}

void Server::Impl::readerLoop(std::shared_ptr<Connection> Conn) {
  std::string Payload;
  while (true) {
    FrameStatus FS = readFrame(Conn->Fd.fd(), Payload, Opt.MaxFrameBytes);
    if (FS == FrameStatus::Ok) {
      QueuedWork Work;
      Work.Conn = Conn;
      Work.AcceptTime = std::chrono::steady_clock::now();
      std::string Error;
      if (parseServiceRequest(Payload, Work.Req, Error)) {
        Work.EnqueueTime = std::chrono::steady_clock::now();
        enqueue(std::move(Work));
      } else {
        // Framing is intact; answer (in order, via the queue) and keep
        // serving the connection.  A request that never parsed has no
        // trace context to echo, traced or not.
        Work.PrebuiltResponse = failRequest(Error);
        Work.EnqueueTime = std::chrono::steady_clock::now();
        enqueue(std::move(Work));
      }
      continue;
    }
    if (FS == FrameStatus::BadMagic || FS == FrameStatus::Oversized) {
      // The stream position is unrecoverable after a framing error; answer
      // once (after any pending responses) and drop the connection.
      QueuedWork Work;
      Work.Conn = Conn;
      Work.AcceptTime = std::chrono::steady_clock::now();
      Work.PrebuiltResponse =
          failRequest(std::string("protocol error: ") + frameStatusName(FS));
      Work.CloseAfter = true;
      Work.EnqueueTime = std::chrono::steady_clock::now();
      enqueue(std::move(Work));
    }
    break; // Eof / Truncated / IoError / framing error: close.
  }
  {
    std::lock_guard<std::mutex> L(ConnMutex);
    Connections.erase(Conn->Id);
    FinishedReaders.push_back(Conn->Id);
  }
  {
    std::lock_guard<std::mutex> L(QueueMutex);
    --ActiveReaders;
  }
  // The dispatcher may be waiting for the last reader to leave.
  QueueNotEmpty.notify_all();
}

void Server::Impl::dispatchLoop() {
  while (true) {
    QueuedWork Work;
    {
      std::unique_lock<std::mutex> L(QueueMutex);
      QueueNotEmpty.wait(L, [this] {
        return !Queue.empty() || (Stop && ActiveReaders == 0);
      });
      if (Queue.empty())
        return; // Stopped and fully drained.
      Work = std::move(Queue.front());
      Queue.pop_front();
    }
    QueueNotFull.notify_one();

    if (!Work.PrebuiltResponse.empty()) {
      writeResponse(*Work.Conn, Work.PrebuiltResponse);
      if (Work.CloseAfter)
        ::shutdown(Work.Conn->Fd.fd(), SHUT_WR);
      continue;
    }

    obs::EventLog &Events = obs::EventLog::global();
    const char *KindName = requestKindName(Work.Req.K);
    auto Begin = std::chrono::steady_clock::now();
    // A trace is armed when the client asked for one, when the slow log
    // could need the span tree, or when the event ring wants request
    // events with ids.  Untraced otherwise: the handler path does zero
    // extra work, keeping the no-observers deployment at its old cost.
    obs::RequestTrace Trace;
    const bool WantTrace =
        Work.Req.Trace || Opt.SlowMs >= 0 || Events.enabled();
    double DispatchStart = 0;
    if (WantTrace) {
      std::string Id = Work.Req.TraceId.empty()
                           ? obs::makeTraceId(TraceSalt, NextTraceSeq++)
                           : Work.Req.TraceId;
      Trace.begin(std::move(Id), Work.AcceptTime);
      Trace.Echo = Work.Req.Trace;
      double ParseMs = msBetween(Work.AcceptTime, Work.EnqueueTime);
      Trace.addSpan("accept", 0, ParseMs);
      Trace.addSpan("queue_wait", ParseMs,
                    msBetween(Work.EnqueueTime, Begin));
      DispatchStart = Trace.sinceBeginMs();
      Trace.DispatchStartMs = DispatchStart;
    }
    Events.record(obs::EventKind::RequestStart, 0, Trace.id().c_str(),
                  KindName);

    std::string Response =
        handleRequest(Work.Req, WantTrace ? &Trace : nullptr);
    double ServiceMs = msSince(Begin);
    recordService(ServiceMs);
    // Handlers close the dispatch span once they know where dispatch
    // work ends (driver start).  Paths that never got there -- ping,
    // stats, validation rejections -- close it here, covering the whole
    // handler.
    if (WantTrace && !Trace.hasSpan("dispatch"))
      Trace.addSpan("dispatch", DispatchStart,
                    Trace.sinceBeginMs() - DispatchStart);

    double FlushStart = WantTrace ? Trace.sinceBeginMs() : 0;
    auto FlushBegin = std::chrono::steady_clock::now();
    writeResponse(*Work.Conn, Response);
    double FlushMs = msSince(FlushBegin);
    if (WantTrace)
      Trace.addSpan("response_flush", FlushStart, FlushMs);

    double TotalMs = ServiceMs + FlushMs;
    Events.record(obs::EventKind::RequestEnd, TotalMs, Trace.id().c_str(),
                  KindName);
    if (Opt.SlowMs >= 0 && TotalMs >= Opt.SlowMs)
      emitSlowRequest(Trace, TotalMs, Work.Req.K);
  }
}

void Server::Impl::emitSlowRequest(const obs::RequestTrace &Trace,
                                   double TotalMs, ServiceRequest::Kind K) {
  obs::EventLog::global().record(obs::EventKind::SlowRequest, TotalMs,
                                 Trace.id().c_str(), requestKindName(K));
  JsonValue Line = JsonValue::object();
  Line.set("event", "slow_request");
  Line.set("kind", requestKindName(K));
  Line.set("total_ms", TotalMs);
  Line.set("trace", Trace.toJson());
  std::string Text = Line.dump(0) + "\n";
  std::FILE *Out = Opt.SlowLog ? Opt.SlowLog : stderr;
  std::fwrite(Text.data(), 1, Text.size(), Out);
  std::fflush(Out);
}

void Server::Impl::writeResponse(Connection &Conn,
                                 const std::string &Payload) {
  // A response that cannot be framed (beyond the server's own bound)
  // becomes an error the client *can* read, instead of a frame its
  // readFrame would reject as oversized after the server paid the full
  // solve cost.
  const std::string *Out = &Payload;
  std::string Fallback;
  if (Payload.size() > Opt.MaxFrameBytes) {
    Fallback = makeErrorResponse(
        "response of " + std::to_string(Payload.size()) +
        " bytes exceeds the server frame bound of " +
        std::to_string(Opt.MaxFrameBytes) +
        "; narrow the request (fewer suites/register counts or "
        "details=false) or raise --max-frame");
    Out = &Fallback;
  }
  // Bounded-progress write: a client that stopped reading must not park
  // the dispatcher (and with it every other connection) on a full socket
  // buffer forever.  A vanished or wedged client is not a server error --
  // its connection is simply dropped, which also unblocks its reader.
  std::string Frame = encodeFrame(*Out);
  if (!sendAllWithTimeout(Conn.Fd.fd(), Frame.data(), Frame.size(),
                          Opt.WriteTimeoutMs))
    ::shutdown(Conn.Fd.fd(), SHUT_RDWR);
}

std::string Server::Impl::failRequest(const std::string &Message,
                                      const obs::RequestTrace *Trace) {
  {
    std::lock_guard<std::mutex> L(StatsMutex);
    ++Counters.RequestsTotal;
    ++Counters.RequestsFailed;
  }
  obs::EventLog::global().record(obs::EventKind::Reject, 0,
                                 Trace ? Trace->id().c_str() : nullptr,
                                 Message.c_str());
  return makeErrorResponse(Message, Trace && Trace->Echo ? Trace->id()
                                                         : std::string());
}

std::string Server::Impl::handleRequest(const ServiceRequest &Req,
                                        obs::RequestTrace *Trace) {
  // Responses without a report body (pong, stats, errors) echo only the
  // trace id -- and only when the client opted in.
  const std::string EchoId =
      Trace && Trace->Echo ? Trace->id() : std::string();
  switch (Req.K) {
  case ServiceRequest::Kind::Ping: {
    std::lock_guard<std::mutex> L(StatsMutex);
    ++Counters.RequestsTotal;
    ++Counters.RequestsPing;
    return makePongResponse(EchoId);
  }
  case ServiceRequest::Kind::Stats: {
    {
      std::lock_guard<std::mutex> L(StatsMutex);
      ++Counters.RequestsTotal;
      ++Counters.RequestsStats;
    }
    return makeStatsResponse(snapshotStats(), EchoId);
  }
  case ServiceRequest::Kind::Allocate:
    return handleAllocate(Req, Trace);
  case ServiceRequest::Kind::SubmitIr:
    return handleSubmitIr(Req, Trace);
  }
  return makeErrorResponse("unhandled request kind");
}

std::string Server::Impl::validateCommon(const ServiceRequest &Req,
                                         const obs::RequestTrace *Trace) {
  const TargetDesc *Target = targetByName(Req.TargetName);
  if (!Target)
    return failRequest("unknown target '" + Req.TargetName + "'", Trace);
  for (const ClassRegOverride &O : Req.ClassRegs)
    if (Target->classIdByName(O.Class) < 0)
      return failRequest("target '" + Req.TargetName +
                             "' has no register class '" + O.Class + "'",
                         Trace);
  if (!makeAllocator(Req.Options.AllocatorName))
    return failRequest("unknown allocator '" + Req.Options.AllocatorName +
                           "'",
                       Trace);
  return std::string();
}

std::string Server::Impl::runJobs(const std::vector<BatchJob> &Jobs,
                                  const ServiceRequest &Req,
                                  uint64_t ServerStats::*Counter,
                                  obs::RequestTrace *Trace) {
  // The dispatch span covers dequeue to driver start (validation, suite
  // lookup, job building); the driver span is the solve itself.
  double DriverStart = 0;
  if (Trace) {
    DriverStart = Trace->sinceBeginMs();
    Trace->addSpan("dispatch", Trace->DispatchStartMs,
                   DriverStart - Trace->DispatchStartMs);
  }
  uint64_t EvictionsBefore = Driver.pipelineCacheCounters().Evictions;
  // Transparent mode makes the response byte-identical to a direct fresh
  // BatchDriver run of the same jobs, however warm the shared cache is.
  // A *timing* request gets the honest warm-cache view instead: with
  // transparency its wall_ms would read 0 for tasks the persistent cache
  // served while cache_hit claimed a fresh solve -- self-contradictory.
  // Byte identity is only promised for timing-free responses anyway
  // (docs/PROTOCOL.md).
  std::vector<PhaseTotals> JobPhases;
  DriverReport Report = Driver.run(Jobs, /*CacheTransparent=*/!Req.Timing,
                                   Trace ? &JobPhases : nullptr);
  if (Trace) {
    Trace->addSpan("driver", DriverStart,
                   Trace->sinceBeginMs() - DriverStart);
    Trace->attachJobPhases(std::move(JobPhases));
    uint64_t Evicted =
        Driver.pipelineCacheCounters().Evictions - EvictionsBefore;
    if (Evicted > 0)
      obs::EventLog::global().record(obs::EventKind::CachePressure,
                                     double(Evicted), Trace->id().c_str());
  }
  JsonValue Doc = driverReportToJson(Report, Req.Timing, Req.Details);
  // The span tree lands after every report member (JsonValue::set appends
  // new keys), so a traced response differs from an untraced one only by
  // the trailing "trace" object -- ServerLoopbackTest holds us to that.
  if (Trace && Trace->Echo)
    Doc.set("trace", Trace->toJson());
  std::string Response = Doc.dump(2) + "\n";
  {
    std::lock_guard<std::mutex> L(StatsMutex);
    ++Counters.RequestsTotal;
    ++(Counters.*Counter);
    CachedCache = Driver.pipelineCacheCounters();
  }
  return Response;
}

std::string Server::Impl::handleAllocate(const ServiceRequest &Req,
                                         obs::RequestTrace *Trace) {
  std::string Rejection = validateCommon(Req, Trace);
  if (!Rejection.empty())
    return Rejection;
  std::vector<std::string> Known = allSuiteNames();
  for (const std::string &Name : Req.Suites)
    if (std::find(Known.begin(), Known.end(), Name) == Known.end())
      return failRequest("unknown suite '" + Name + "'", Trace);

  const TargetDesc *Target = targetByName(Req.TargetName);
  std::vector<BatchJob> Jobs;
  for (const std::string &Name : Req.Suites) {
    auto It = SuiteCache.find(Name);
    if (It == SuiteCache.end())
      It = SuiteCache.emplace(Name, makeSuite(Name)).first;
    // A suite with multi-class functions needs a target with those files
    // (e.g. mixed-classes on plain st231 must be a request error, not a
    // driver abort).
    for (const SuiteProgram &Prog : It->second.Programs)
      for (const Function &F : Prog.Functions)
        if (std::string E = checkFunctionClasses(F, *Target); !E.empty())
          return failRequest("suite '" + Name + "': " + E, Trace);
    for (unsigned Regs : Req.Regs) {
      BatchJob Job;
      Job.SuiteName = Name;
      Job.SuiteData = &It->second;
      Job.Target = *Target;
      Job.NumRegisters = Regs;
      Job.ClassRegs = Req.ClassRegs;
      Job.Options = Req.Options;
      Jobs.push_back(std::move(Job));
    }
  }
  return runJobs(Jobs, Req, &ServerStats::RequestsAllocate, Trace);
}

std::string Server::Impl::handleSubmitIr(const ServiceRequest &Req,
                                         obs::RequestTrace *Trace) {
  std::string Rejection = validateCommon(Req, Trace);
  if (!Rejection.empty())
    return Rejection;
  // validateCommon just proved the target exists; one lookup serves the
  // class check and the job construction below.
  const TargetDesc *Target = targetByName(Req.TargetName);
  ParsedFunction Parsed = parseFunction(Req.IrText);
  if (!Parsed.Ok)
    return failRequest("ir parse error at line " +
                           std::to_string(Parsed.Line) + ": " + Parsed.Error,
                       Trace);
  std::string VerifyError;
  if (!verifyFunction(Parsed.F, /*ExpectSsa=*/true, &VerifyError))
    return failRequest("ir is not strict SSA: " + VerifyError, Trace);
  // Reject class ids the target has no file for before the pipeline's
  // fatal-error path can see them.
  if (std::string E = checkFunctionClasses(Parsed.F, *Target); !E.empty())
    return failRequest(E, Trace);

  Suite S;
  S.Name = Req.Name.empty() ? "submitted" : Req.Name;
  SuiteProgram Prog;
  Prog.Name = Parsed.F.name();
  Prog.Functions.push_back(std::move(Parsed.F));
  S.Programs.push_back(std::move(Prog));

  std::vector<BatchJob> Jobs;
  for (unsigned Regs : Req.Regs) {
    BatchJob Job;
    Job.SuiteName = S.Name;
    Job.SuiteData = &S;
    Job.Target = *Target;
    Job.NumRegisters = Regs;
    Job.ClassRegs = Req.ClassRegs;
    Job.Options = Req.Options;
    Jobs.push_back(std::move(Job));
  }
  return runJobs(Jobs, Req, &ServerStats::RequestsSubmitIr, Trace);
}

void Server::Impl::recordService(double Ms) {
  ServiceHist.record(Ms);
  std::lock_guard<std::mutex> L(StatsMutex);
  DispatcherBusyMs += Ms;
}

ServerStats Server::Impl::snapshotStats() {
  // The histogram is wait-free concurrent state; read it before taking
  // StatsMutex so a slow percentile walk never extends the lock hold.
  HistogramSnapshot Latency = ServiceHist.snapshot();
  Latency.Name = "layra.serve.service_ms";
  ServerStats S;
  {
    std::lock_guard<std::mutex> L(StatsMutex);
    S = Counters;
    S.UptimeMs = msSince(StartTime);
    S.DispatcherBusyMs = DispatcherBusyMs;
    S.DispatcherUtilization =
        S.UptimeMs > 0 ? std::min(1.0, DispatcherBusyMs / S.UptimeMs) : 0.0;
    S.CacheEntries = CachedCache.Entries;
    S.CacheCapacity = CachedCache.Capacity;
    S.CacheHits = CachedCache.Hits;
    S.CacheMisses = CachedCache.Misses;
    S.CacheEvictions = CachedCache.Evictions;
  }
  {
    std::lock_guard<std::mutex> L(QueueMutex);
    S.QueueDepth = Queue.size();
    S.QueueMaxDepth = QueueMaxDepth;
  }
  S.QueueCapacity = Opt.QueueCapacity;
  {
    std::lock_guard<std::mutex> L(ConnMutex);
    S.ConnectionsActive = Connections.size();
  }
  S.ServiceSamples = Latency.Count;
  S.ServiceMsP50 = Latency.percentile(0.50);
  S.ServiceMsP95 = Latency.percentile(0.95);
  S.ServiceMsP99 = Latency.percentile(0.99);
  S.ServiceLatency = std::move(Latency);
  return S;
}

//===----------------------------------------------------------------------===//
// Server
//===----------------------------------------------------------------------===//

Server::Server(ServerOptions Options)
    : State(std::make_unique<Impl>(std::move(Options))) {}

Server::~Server() {
  requestStop();
  wait();
}

bool Server::start(std::string *Error) { return State->start(Error); }

void Server::requestStop() {
  if (State->Started)
    State->requestStop();
}

void Server::wait() { State->wait(); }

bool Server::running() const { return State->Started && !State->Drained; }

uint16_t Server::tcpPort() const { return State->BoundTcpPort; }

const std::string &Server::unixPath() const { return State->Opt.UnixPath; }

ServerStats Server::stats() const { return State->snapshotStats(); }
