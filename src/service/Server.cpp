//===- service/Server.cpp - Long-running allocation server -----------------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "service/Server.h"

#include "alloc/Allocator.h"
#include "driver/BatchDriver.h"
#include "driver/ReportIO.h"
#include "ir/Parser.h"
#include "obs/EventLog.h"
#include "obs/Metrics.h"
#include "obs/RequestTrace.h"
#include "service/DiskCache.h"
#include "support/Socket.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <map>
#include <mutex>
#include <string_view>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>
#include <unordered_map>
#include <vector>

#ifdef __linux__
#include <sys/epoll.h>
#else
#include <poll.h>
#endif

using namespace layra;

namespace {

/// Event-loop tick: the latency bound on noticing a stop request or a
/// write-timeout expiry while no descriptor fires.
constexpr int kTickMs = 100;
/// Bytes read per recv() into a connection's input buffer.
constexpr size_t kReadChunk = 64u << 10;

double msSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration_cast<
             std::chrono::duration<double, std::milli>>(
             std::chrono::steady_clock::now() - Start)
      .count();
}

const char *requestKindName(ServiceRequest::Kind K) {
  switch (K) {
  case ServiceRequest::Kind::Ping:
    return "ping";
  case ServiceRequest::Kind::Stats:
    return "stats";
  case ServiceRequest::Kind::Allocate:
    return "allocate";
  case ServiceRequest::Kind::SubmitIr:
    return "submit_ir";
  }
  return "unknown";
}

/// One readiness event from the poller, normalized across backends.
/// Readable carries only data readiness; Error covers hangups and error
/// conditions (reported even when a descriptor's interest mask is empty,
/// so a window-paused connection whose peer vanished still gets noticed).
struct PollEvent {
  int Fd = -1;
  bool Readable = false;
  bool Writable = false;
  bool Error = false;
};

#ifdef __linux__

/// Level-triggered epoll wrapper.  Level-triggered on purpose: the loop
/// may stop reading a connection mid-burst (in-flight window full) and
/// must get re-notified for the bytes it left in the kernel buffer.
class Poller {
public:
  Poller() : Ep(::epoll_create1(EPOLL_CLOEXEC)) {}
  ~Poller() {
    if (Ep >= 0)
      ::close(Ep);
  }
  Poller(const Poller &) = delete;
  Poller &operator=(const Poller &) = delete;

  bool valid() const { return Ep >= 0; }
  void add(int Fd, bool R, bool W) { ctl(EPOLL_CTL_ADD, Fd, R, W); }
  void set(int Fd, bool R, bool W) { ctl(EPOLL_CTL_MOD, Fd, R, W); }
  void remove(int Fd) { ::epoll_ctl(Ep, EPOLL_CTL_DEL, Fd, nullptr); }

  void wait(std::vector<PollEvent> &Out, int TimeoutMs) {
    Out.clear();
    epoll_event Evs[64];
    int N = ::epoll_wait(Ep, Evs, 64, TimeoutMs);
    for (int I = 0; I < N; ++I) {
      PollEvent E;
      E.Fd = Evs[I].data.fd;
      E.Readable = (Evs[I].events & EPOLLIN) != 0;
      E.Writable = (Evs[I].events & EPOLLOUT) != 0;
      E.Error = (Evs[I].events & (EPOLLERR | EPOLLHUP)) != 0;
      Out.push_back(E);
    }
  }

private:
  void ctl(int Op, int Fd, bool R, bool W) {
    epoll_event Ev{};
    Ev.events = (R ? unsigned(EPOLLIN) : 0u) | (W ? unsigned(EPOLLOUT) : 0u);
    Ev.data.fd = Fd;
    ::epoll_ctl(Ep, Op, Fd, &Ev);
  }
  int Ep = -1;
};

#else

/// poll(2) fallback with the same level-triggered semantics: the interest
/// map is rebuilt into a pollfd array per wait.  Fine at the connection
/// counts this server targets off Linux.
class Poller {
public:
  bool valid() const { return true; }
  void add(int Fd, bool R, bool W) { Interest[Fd] = mask(R, W); }
  void set(int Fd, bool R, bool W) { Interest[Fd] = mask(R, W); }
  void remove(int Fd) { Interest.erase(Fd); }

  void wait(std::vector<PollEvent> &Out, int TimeoutMs) {
    Out.clear();
    std::vector<pollfd> Fds;
    Fds.reserve(Interest.size());
    for (const auto &E : Interest)
      Fds.push_back({E.first, E.second, 0});
    int N = ::poll(Fds.data(), nfds_t(Fds.size()), TimeoutMs);
    if (N <= 0)
      return;
    for (const pollfd &P : Fds) {
      if (!P.revents)
        continue;
      PollEvent E;
      E.Fd = P.fd;
      E.Readable = (P.revents & POLLIN) != 0;
      E.Writable = (P.revents & POLLOUT) != 0;
      E.Error = (P.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0;
      Out.push_back(E);
    }
  }

private:
  static short mask(bool R, bool W) {
    return short((R ? POLLIN : 0) | (W ? POLLOUT : 0));
  }
  std::map<int, short> Interest;
};

#endif

/// A finished request on its way back to the IO loop: the response plus
/// everything the flush-time bookkeeping (RequestEnd event, slow log,
/// response_flush span) needs.  Shard workers post these; for requests the
/// IO thread answers itself (ping/stats, parse errors, rejects) one is
/// sequenced directly without crossing threads.
struct Completion {
  uint64_t ConnId = 0;
  uint64_t Seq = 0;
  std::string Response;
  /// Close the connection once this response is flushed (framing errors,
  /// connection-limit rejections).
  bool CloseAfter = false;
  /// Record RequestEnd / slow-log at flush time.  False for replies that
  /// never got a RequestStart (parse/framing errors, admission rejects).
  bool TrackEnd = false;
  bool WantTrace = false;
  obs::RequestTrace Trace;
  double ServiceMs = 0;
  ServiceRequest::Kind Kind = ServiceRequest::Kind::Ping;
};

/// One request parked in a shard queue.
struct ShardJob {
  uint64_t ConnId = 0;
  uint64_t Seq = 0;
  ServiceRequest Req;
  obs::RequestTrace Trace;
  bool WantTrace = false;
  /// Epoch offset where parsing finished (the accept span's end); the
  /// shard worker's dequeue stamp closes the queue_wait span against it.
  double ParseMs = 0;
};

/// Flush bookkeeping for one response sitting in a connection's output
/// buffer.  EndOffset is the connection's cumulative queued-byte count at
/// the end of this frame; once the flushed-byte count reaches it the
/// response is on the wire and the record finalizes.
struct FlushRecord {
  uint64_t EndOffset = 0;
  bool TrackEnd = false;
  bool WantTrace = false;
  obs::RequestTrace Trace;
  double ServiceMs = 0;
  double FlushStartMs = 0;
  std::chrono::steady_clock::time_point FlushStartTime;
  ServiceRequest::Kind Kind = ServiceRequest::Kind::Ping;
};

/// Per-connection state, owned and touched by the IO thread only.
struct IoConn {
  SocketFd Fd;
  uint64_t Id = 0;
  /// False for connections beyond the connection limit: they exist only
  /// to carry the rejection reply and never count as active.
  bool Admitted = false;

  //--- Read side. ---------------------------------------------------------
  /// Incremental frame assembly: bytes land here verbatim and requests are
  /// parsed in place as string_views -- no per-frame payload copy.  InPos
  /// marks consumed bytes; the buffer compacts once drained.
  std::string InBuf;
  size_t InPos = 0;
  /// No further socket reads (EOF, framing error, drain).
  bool ReadClosed = false;
  /// No further frame parsing (framing error poisoned the stream).
  bool ParseDead = false;

  //--- Request sequencing. ------------------------------------------------
  /// Per-connection sequence numbers keep responses in request order no
  /// matter which shard finishes first: NextSeq stamps requests at parse,
  /// NextFlushSeq is the next response allowed into the output buffer,
  /// Ready parks completions that finished out of order.
  uint64_t NextSeq = 0;
  uint64_t NextFlushSeq = 0;
  std::map<uint64_t, Completion> Ready;
  /// Requests parsed but not yet appended to the output buffer; the
  /// admission window pauses parsing while this reaches the bound.
  unsigned InFlight = 0;

  //--- Write side. --------------------------------------------------------
  std::string OutBuf;
  size_t OutPos = 0;
  bool CloseAfterFlush = false;
  uint64_t BytesQueuedTotal = 0;
  uint64_t BytesFlushedTotal = 0;
  std::deque<FlushRecord> Flushes;
  std::chrono::steady_clock::time_point LastWriteProgress;

  /// Cached poller interest, to skip redundant syscalls.
  bool IntRead = false;
  bool IntWrite = false;
};

/// One shared-nothing shard: a private driver (thread pool, workspaces,
/// LRU), a private suite cache, and a bounded queue its worker drains.
struct Shard {
  Shard(unsigned Index, unsigned Threads) : Index(Index), Driver(Threads) {}

  const unsigned Index;
  /// Worker-thread-private after start(); the disk cache underneath it is
  /// internally synchronized.
  BatchDriver Driver;
  /// Named suites generated once per shard; tiny (four suite names).
  std::map<std::string, Suite> SuiteCache;

  std::mutex QMutex;
  std::condition_variable QCv;
  std::deque<ShardJob> Queue; ///< QMutex.
  uint64_t QueueMaxDepth = 0; ///< QMutex.
  bool Drain = false;         ///< QMutex.
  std::thread Worker;

  /// Published statistics; the worker is the only writer.
  std::mutex StatMutex;
  uint64_t Requests = 0;       ///< StatMutex.
  double BusyMs = 0;           ///< StatMutex.
  DriverCacheCounters Cache;   ///< StatMutex.
  DriverDeltaCounters Delta;   ///< StatMutex.
};

} // namespace

std::string layra::makeStatsResponse(const ServerStats &S,
                                     const std::string &TraceId) {
  JsonValue Doc = JsonValue::object();
  Doc.set("schema", kStatsSchema);
  Doc.set("protocol", kServeProtocolVersion);
  Doc.set("uptime_ms", S.UptimeMs);
  Doc.set("threads", S.Threads);
  JsonValue Requests = JsonValue::object();
  Requests.set("total", S.RequestsTotal);
  Requests.set("allocate", S.RequestsAllocate);
  Requests.set("submit_ir", S.RequestsSubmitIr);
  Requests.set("stats", S.RequestsStats);
  Requests.set("ping", S.RequestsPing);
  Requests.set("failed", S.RequestsFailed);
  Requests.set("rejected", S.RequestsRejected);
  Doc.set("requests", std::move(Requests));
  JsonValue Connections = JsonValue::object();
  Connections.set("accepted", S.ConnectionsAccepted);
  Connections.set("rejected", S.ConnectionsRejected);
  Connections.set("active", S.ConnectionsActive);
  Doc.set("connections", std::move(Connections));
  JsonValue Cache = JsonValue::object();
  Cache.set("entries", S.CacheEntries);
  Cache.set("capacity", S.CacheCapacity);
  Cache.set("hits", S.CacheHits);
  Cache.set("misses", S.CacheMisses);
  Cache.set("evictions", S.CacheEvictions);
  double Classified = static_cast<double>(S.CacheHits + S.CacheMisses);
  Cache.set("hit_rate", Classified > 0
                            ? static_cast<double>(S.CacheHits) / Classified
                            : 0.0);
  Doc.set("cache", std::move(Cache));
  JsonValue Queue = JsonValue::object();
  Queue.set("depth", S.QueueDepth);
  Queue.set("max_depth", S.QueueMaxDepth);
  Queue.set("capacity", S.QueueCapacity);
  Doc.set("queue", std::move(Queue));
  JsonValue Latency = JsonValue::object();
  Latency.set("service_ms_p50", S.ServiceMsP50);
  Latency.set("service_ms_p95", S.ServiceMsP95);
  Latency.set("service_ms_p99", S.ServiceMsP99);
  Latency.set("samples", S.ServiceSamples);
  // Cumulative histogram in le/count form (Prometheus-style): each entry
  // says "this many samples took at most le_ms".  Only occupied buckets are
  // serialized, so the array stays small however wide the geometry is.
  JsonValue Buckets = JsonValue::array();
  uint64_t Cumulative = 0;
  for (size_t I = 0; I < S.ServiceLatency.Buckets.size(); ++I) {
    if (S.ServiceLatency.Buckets[I] == 0)
      continue;
    Cumulative += S.ServiceLatency.Buckets[I];
    JsonValue Bucket = JsonValue::object();
    Bucket.set("le_ms", hist::ticksToMs(
                            double(hist::bucketHighTicks(unsigned(I)))));
    Bucket.set("count", Cumulative);
    Buckets.push(std::move(Bucket));
  }
  Latency.set("histogram", std::move(Buckets));
  Doc.set("latency", std::move(Latency));
  JsonValue Dispatcher = JsonValue::object();
  Dispatcher.set("busy_ms", S.DispatcherBusyMs);
  Dispatcher.set("utilization", S.DispatcherUtilization);
  Doc.set("dispatcher", std::move(Dispatcher));
  // v3 additions land after every v2 member (insertion-ordered object), so
  // a v2 consumer reading by name sees exactly what it always saw.
  JsonValue ShardsArr = JsonValue::array();
  for (size_t I = 0; I < S.PerShard.size(); ++I) {
    const ShardStats &E = S.PerShard[I];
    JsonValue Sh = JsonValue::object();
    Sh.set("shard", static_cast<uint64_t>(I));
    Sh.set("requests", E.Requests);
    JsonValue SC = JsonValue::object();
    SC.set("entries", E.CacheEntries);
    SC.set("capacity", E.CacheCapacity);
    SC.set("hits", E.CacheHits);
    SC.set("misses", E.CacheMisses);
    SC.set("evictions", E.CacheEvictions);
    double SCl = static_cast<double>(E.CacheHits + E.CacheMisses);
    SC.set("hit_rate",
           SCl > 0 ? static_cast<double>(E.CacheHits) / SCl : 0.0);
    Sh.set("cache", std::move(SC));
    JsonValue SQ = JsonValue::object();
    SQ.set("depth", E.QueueDepth);
    SQ.set("max_depth", E.QueueMaxDepth);
    SQ.set("capacity", E.QueueCapacity);
    Sh.set("queue", std::move(SQ));
    Sh.set("busy_ms", E.BusyMs);
    JsonValue SD = JsonValue::object();
    SD.set("hits", E.DeltaHits);
    SD.set("fallbacks", E.DeltaFallbacks);
    SD.set("bases", E.DeltaBases);
    Sh.set("delta", std::move(SD));
    ShardsArr.push(std::move(Sh));
  }
  Doc.set("shards", std::move(ShardsArr));
  JsonValue Disk = JsonValue::object();
  Disk.set("enabled", S.DiskCacheEnabled);
  Disk.set("entries", S.DiskEntries);
  Disk.set("bytes", S.DiskBytes);
  Disk.set("hits", S.DiskHits);
  Disk.set("misses", S.DiskMisses);
  Disk.set("writes", S.DiskWrites);
  Disk.set("evictions", S.DiskEvictions);
  // v4: touch_failures lands after every v3 disk_cache member, and the
  // delta object after the whole v3 document, so a v3 consumer reading by
  // name sees exactly what it always saw.
  Disk.set("touch_failures", S.DiskTouchFailures);
  Doc.set("disk_cache", std::move(Disk));
  JsonValue DeltaDoc = JsonValue::object();
  DeltaDoc.set("hits", S.DeltaHits);
  DeltaDoc.set("fallbacks", S.DeltaFallbacks);
  DeltaDoc.set("bases", S.DeltaBases);
  Doc.set("delta", std::move(DeltaDoc));
  // The trace echo, like everywhere else, lands after every existing
  // member so untraced stats responses keep their exact bytes.
  if (!TraceId.empty()) {
    JsonValue TraceDoc = JsonValue::object();
    TraceDoc.set("id", TraceId);
    Doc.set("trace", std::move(TraceDoc));
  }
  return Doc.dump(2) + "\n";
}

std::string layra::makeMetricsExposition(const ServerStats &S) {
  // Server-level stats rendered through the same exposition machinery as
  // the registry metrics, so one scrape sees one consistent format.
  MetricsSnapshot Snap;
  Snap.Counters = {
      {"layra.serve.requests.total", S.RequestsTotal},
      {"layra.serve.requests.allocate", S.RequestsAllocate},
      {"layra.serve.requests.submit_ir", S.RequestsSubmitIr},
      {"layra.serve.requests.stats", S.RequestsStats},
      {"layra.serve.requests.ping", S.RequestsPing},
      {"layra.serve.requests.failed", S.RequestsFailed},
      {"layra.serve.requests.rejected", S.RequestsRejected},
      {"layra.serve.connections.accepted", S.ConnectionsAccepted},
      {"layra.serve.connections.rejected", S.ConnectionsRejected},
      {"layra.serve.cache.hits", S.CacheHits},
      {"layra.serve.cache.misses", S.CacheMisses},
      {"layra.serve.cache.evictions", S.CacheEvictions},
      {"layra.serve.delta.hits", S.DeltaHits},
      {"layra.serve.delta.fallbacks", S.DeltaFallbacks},
  };
  double Classified = double(S.CacheHits + S.CacheMisses);
  Snap.Gauges = {
      {"layra.serve.uptime_ms", S.UptimeMs},
      {"layra.serve.threads", double(S.Threads)},
      {"layra.serve.connections.active", double(S.ConnectionsActive)},
      {"layra.serve.cache.entries", double(S.CacheEntries)},
      {"layra.serve.cache.capacity", double(S.CacheCapacity)},
      {"layra.serve.cache.hit_rate",
       Classified > 0 ? double(S.CacheHits) / Classified : 0.0},
      {"layra.serve.queue.depth", double(S.QueueDepth)},
      {"layra.serve.queue.max_depth", double(S.QueueMaxDepth)},
      {"layra.serve.queue.capacity", double(S.QueueCapacity)},
      {"layra.serve.dispatcher.busy_ms", S.DispatcherBusyMs},
      {"layra.serve.dispatcher.utilization", S.DispatcherUtilization},
      {"layra.serve.delta.bases", double(S.DeltaBases)},
  };
  for (size_t I = 0; I < S.PerShard.size(); ++I) {
    const ShardStats &E = S.PerShard[I];
    std::string P = "layra.serve.shard." + std::to_string(I);
    Snap.Counters.push_back({P + ".requests", E.Requests});
    Snap.Counters.push_back({P + ".cache.hits", E.CacheHits});
    Snap.Counters.push_back({P + ".cache.misses", E.CacheMisses});
    Snap.Gauges.push_back({P + ".queue.depth", double(E.QueueDepth)});
    Snap.Gauges.push_back({P + ".busy_ms", E.BusyMs});
  }
  if (S.DiskCacheEnabled) {
    Snap.Counters.push_back({"layra.serve.disk.hits", S.DiskHits});
    Snap.Counters.push_back({"layra.serve.disk.misses", S.DiskMisses});
    Snap.Counters.push_back({"layra.serve.disk.writes", S.DiskWrites});
    Snap.Counters.push_back({"layra.serve.disk.evictions", S.DiskEvictions});
    Snap.Counters.push_back(
        {"layra.serve.disk.touch_failures", S.DiskTouchFailures});
    Snap.Gauges.push_back({"layra.serve.disk.entries", double(S.DiskEntries)});
    Snap.Gauges.push_back({"layra.serve.disk.bytes", double(S.DiskBytes)});
  }
  if (S.ServiceLatency.Count > 0) {
    HistogramSnapshot Service = S.ServiceLatency;
    Service.Name = "layra.serve.service_ms";
    Snap.Histograms.push_back(std::move(Service));
  }
  return Snap.toPrometheusText() +
         MetricsRegistry::global().snapshot().toPrometheusText();
}

//===----------------------------------------------------------------------===//
// Server::Impl
//===----------------------------------------------------------------------===//

struct Server::Impl {
  explicit Impl(ServerOptions Options) : Opt(std::move(Options)) {
    NumShards = std::max(1u, Opt.Shards);
    if (!Opt.DiskCacheDir.empty())
      Disk = std::make_unique<DiskCache>(Opt.DiskCacheDir,
                                         Opt.DiskCacheCapBytes);
    // Splitting one entry bound across shards keeps total memory at the
    // configured level; each shard holds at least one entry so a tiny
    // bound with many shards still caches something.
    size_t PerShardCap =
        Opt.CacheCapacity
            ? std::max<size_t>(1, Opt.CacheCapacity / NumShards)
            : 0;
    size_t PerShardBases =
        Opt.BaseRegistryCapacity
            ? std::max<size_t>(1, Opt.BaseRegistryCapacity / NumShards)
            : 0;
    for (unsigned I = 0; I < NumShards; ++I) {
      auto Sh = std::make_unique<Shard>(I, Opt.Threads);
      Sh->Driver.setCacheCapacity(PerShardCap);
      Sh->Driver.setBaseRegistryCapacity(PerShardBases);
      if (Disk && Disk->valid())
        Sh->Driver.setOutcomeStore(Disk.get());
      Sh->Cache = Sh->Driver.pipelineCacheCounters();
      Sh->Delta = Sh->Driver.deltaCounters();
      ShardList.push_back(std::move(Sh));
    }
  }

  ServerOptions Opt;
  unsigned NumShards = 1;
  std::vector<std::unique_ptr<Shard>> ShardList;
  /// Persistent outcome store shared by every shard driver (the store is
  /// internally synchronized); null when --disk-cache is off.
  std::unique_ptr<DiskCache> Disk;

  //--- Listeners, poller, threads. ----------------------------------------
  SocketFd TcpListener;
  SocketFd UnixListener;
  uint16_t BoundTcpPort = 0;
  /// Self-pipe: shard workers and requestStop() write a byte to pull the
  /// IO thread out of its poll wait.
  SocketFd WakeRead;
  SocketFd WakeWrite;
  Poller Poll;
  std::thread IoThread;
  std::atomic<bool> Started{false};
  std::atomic<bool> Stop{false};
  std::atomic<bool> Drained{false};

  //--- IO-thread-private connection state. --------------------------------
  std::map<uint64_t, std::unique_ptr<IoConn>> Conns;
  std::unordered_map<int, IoConn *> FdIndex;
  uint64_t NextConnId = 1;
  /// Jobs handed to shards whose completions have not come back yet; the
  /// drain waits for this to hit zero.
  uint64_t OutstandingShardJobs = 0;
  bool Draining = false;

  //--- Completion channel (shard workers -> IO thread). -------------------
  std::mutex CompMutex;
  std::vector<Completion> Completions;

  //--- Statistics. --------------------------------------------------------
  mutable std::mutex StatsMutex;
  ServerStats Counters; ///< Aggregate fields are filled on snapshot.
  /// Wall time the IO thread spent executing inline requests (ping/stats);
  /// shard busy time lives in each Shard (StatsMutex).
  double InlineBusyMs = 0;
  std::atomic<uint64_t> ActiveConns{0};
  /// Lifetime service-time histogram (log-linear buckets, obs/Metrics.h):
  /// wait-free record() from the IO thread and every shard worker, same
  /// bucket geometry layra-loadgen uses client-side.
  Histogram ServiceHist;
  std::chrono::steady_clock::time_point StartTime;

  //--- Request tracing (IO thread assigns ids at parse time). -------------
  uint64_t TraceSalt = 0;
  /// Sequence for server-generated ids; the IO thread is the only
  /// generator, so a plain counter suffices -- and ids stay in request
  /// arrival order however many shards execute them.
  uint64_t NextTraceSeq = 1;

  //--- Implementation. ----------------------------------------------------
  bool start(std::string *Error);
  void requestStop();
  void wait();
  void wakeIo();
  void ioLoop();
  void beginDrain();
  void acceptReady(SocketFd &Listener);
  IoConn *connByFd(int Fd);
  bool readInput(IoConn &C);
  void parseFrames(IoConn &C, bool IgnoreWindow = false);
  void processRequest(IoConn &C, std::string_view Payload);
  void sequenceCompletion(IoConn &C, Completion Comp);
  void appendResponse(IoConn &C, Completion &Comp);
  bool tryWrite(IoConn &C);
  void finalizeFlush(FlushRecord &R);
  void updateInterest(IoConn &C);
  bool maybeClose(IoConn &C);
  void destroyConn(IoConn &C);
  void drainCompletions();
  void postCompletion(Completion Comp);
  void checkWriteTimeouts();
  void shardLoop(Shard &Sh);
  std::string handleAllocate(Shard &Sh, const ServiceRequest &Req,
                             obs::RequestTrace *Trace);
  std::string handleSubmitIr(Shard &Sh, const ServiceRequest &Req,
                             obs::RequestTrace *Trace);
  std::string runJobs(Shard &Sh, const std::vector<BatchJob> &Jobs,
                      const ServiceRequest &Req,
                      uint64_t ServerStats::*Counter,
                      obs::RequestTrace *Trace);
  std::string failRequest(const std::string &Message,
                          const obs::RequestTrace *Trace = nullptr);
  /// Target/allocator validation shared by allocate and submit_ir;
  /// returns a non-empty error-response payload on rejection.
  std::string validateCommon(const ServiceRequest &Req,
                             const obs::RequestTrace *Trace);
  /// One slow-request JSON line (full span tree) on Opt.SlowLog.
  void emitSlowRequest(const obs::RequestTrace &Trace, double TotalMs,
                       ServiceRequest::Kind K);
  ServerStats snapshotStats();
};

bool Server::Impl::start(std::string *Error) {
  if (Opt.UnixPath.empty() && !Opt.EnableTcp) {
    if (Error)
      *Error = "server needs a Unix socket path and/or TCP enabled";
    return false;
  }
  if (Disk && !Disk->valid()) {
    if (Error)
      *Error = Disk->error();
    return false;
  }
  if (!Poll.valid()) {
    if (Error)
      *Error = "cannot create the event poller";
    return false;
  }
  if (Opt.EnableTcp) {
    TcpListener = listenTcp(Opt.TcpHost, Opt.TcpPort, Error);
    if (!TcpListener.valid())
      return false;
    BoundTcpPort = boundTcpPort(TcpListener);
  }
  if (!Opt.UnixPath.empty()) {
    UnixListener = listenUnix(Opt.UnixPath, Error);
    if (!UnixListener.valid()) {
      TcpListener.reset();
      return false;
    }
  }
  int PipeFds[2];
  if (::pipe(PipeFds) != 0) {
    if (Error)
      *Error = "cannot create the wake pipe";
    TcpListener.reset();
    UnixListener.reset();
    if (!Opt.UnixPath.empty())
      ::unlink(Opt.UnixPath.c_str());
    return false;
  }
  WakeRead.reset(PipeFds[0]);
  WakeWrite.reset(PipeFds[1]);
  setNonBlocking(WakeRead.fd());
  setNonBlocking(WakeWrite.fd());
  raiseFdLimit(Opt.MaxConnections + 64);
  if (TcpListener.valid()) {
    setNonBlocking(TcpListener.fd());
    Poll.add(TcpListener.fd(), /*R=*/true, /*W=*/false);
  }
  if (UnixListener.valid()) {
    setNonBlocking(UnixListener.fd());
    Poll.add(UnixListener.fd(), /*R=*/true, /*W=*/false);
  }
  Poll.add(WakeRead.fd(), /*R=*/true, /*W=*/false);
  StartTime = std::chrono::steady_clock::now();
  TraceSalt = Opt.TraceIdSalt
                  ? Opt.TraceIdSalt
                  : static_cast<uint64_t>(StartTime.time_since_epoch().count());
  Counters.Threads = ShardList.front()->Driver.numThreads();
  Started = true;
  for (auto &Sh : ShardList) {
    Shard *S = Sh.get();
    S->Worker = std::thread([this, S] { shardLoop(*S); });
  }
  IoThread = std::thread([this] { ioLoop(); });
  return true;
}

void Server::Impl::requestStop() {
  if (Stop.exchange(true))
    return;
  obs::EventLog::global().record(obs::EventKind::DrainBegin);
  wakeIo();
}

void Server::Impl::wait() {
  if (!Started)
    return;
  if (IoThread.joinable())
    IoThread.join();
  for (auto &Sh : ShardList)
    if (Sh->Worker.joinable())
      Sh->Worker.join();
  // The wake pipe closes only after every writer (shard worker) is gone.
  WakeRead.reset();
  WakeWrite.reset();
  TcpListener.reset();
  UnixListener.reset();
  if (!Opt.UnixPath.empty())
    ::unlink(Opt.UnixPath.c_str());
  obs::EventLog::global().record(obs::EventKind::DrainEnd);
  Drained = true;
}

void Server::Impl::wakeIo() {
  if (!WakeWrite.valid())
    return;
  char B = 1;
  // A full pipe means a wakeup is already pending; nothing to do.
  ssize_t Ignored = ::write(WakeWrite.fd(), &B, 1);
  (void)Ignored;
}

void Server::Impl::postCompletion(Completion Comp) {
  {
    std::lock_guard<std::mutex> L(CompMutex);
    Completions.push_back(std::move(Comp));
  }
  wakeIo();
}

IoConn *Server::Impl::connByFd(int Fd) {
  auto It = FdIndex.find(Fd);
  return It == FdIndex.end() ? nullptr : It->second;
}

void Server::Impl::ioLoop() {
  std::vector<PollEvent> Events;
  while (true) {
    Poll.wait(Events, kTickMs);
    if (Stop && !Draining)
      beginDrain();
    for (const PollEvent &Ev : Events) {
      if (WakeRead.valid() && Ev.Fd == WakeRead.fd()) {
        char Buf[256];
        while (::read(WakeRead.fd(), Buf, sizeof Buf) > 0) {
        }
        continue;
      }
      if (TcpListener.valid() && Ev.Fd == TcpListener.fd()) {
        acceptReady(TcpListener);
        continue;
      }
      if (UnixListener.valid() && Ev.Fd == UnixListener.fd()) {
        acceptReady(UnixListener);
        continue;
      }
      IoConn *C = connByFd(Ev.Fd);
      if (!C)
        continue; // Closed earlier in this batch.
      // An error with no data left to read means the peer is gone in both
      // directions -- responses are undeliverable, so drop everything.
      if (Ev.Error && !Ev.Readable && !Ev.Writable) {
        destroyConn(*C);
        continue;
      }
      if (Ev.Writable && !tryWrite(*C))
        continue;
      if (Ev.Readable && !readInput(*C))
        continue;
      updateInterest(*C);
      maybeClose(*C);
    }
    drainCompletions();
    checkWriteTimeouts();
    if (Draining && OutstandingShardJobs == 0 && Conns.empty())
      return;
  }
}

void Server::Impl::beginDrain() {
  Draining = true;
  if (TcpListener.valid()) {
    Poll.remove(TcpListener.fd());
    TcpListener.reset();
  }
  if (UnixListener.valid()) {
    Poll.remove(UnixListener.fd());
    UnixListener.reset();
  }
  // Complete frames already buffered still execute (a drain is not an
  // abort); incomplete tails are abandoned with the read side.  The window
  // is ignored so nothing accepted stays stuck behind a paused parser.
  std::vector<uint64_t> Ids;
  Ids.reserve(Conns.size());
  for (const auto &E : Conns)
    Ids.push_back(E.first);
  for (uint64_t Id : Ids) {
    auto It = Conns.find(Id);
    if (It == Conns.end())
      continue;
    IoConn &C = *It->second;
    C.ReadClosed = true;
    parseFrames(C, /*IgnoreWindow=*/true);
    if (!tryWrite(C))
      continue;
    updateInterest(C);
    maybeClose(C);
  }
  // Shard drain flags flip only after the enqueues above (same thread), so
  // every drained frame is in a queue before any worker sees Drain.
  for (auto &Sh : ShardList) {
    {
      std::lock_guard<std::mutex> L(Sh->QMutex);
      Sh->Drain = true;
    }
    Sh->QCv.notify_all();
  }
}

void Server::Impl::acceptReady(SocketFd &Listener) {
  while (true) {
    int Fd = ::accept(Listener.fd(), nullptr, nullptr);
    if (Fd < 0) {
      if (errno == EINTR)
        continue;
      break; // EAGAIN, or a transient failure the level trigger retries.
    }
    setNonBlocking(Fd);
    setTcpNoDelay(Fd);
    auto C = std::make_unique<IoConn>();
    C->Fd.reset(Fd);
    C->Id = NextConnId++;
    C->LastWriteProgress = std::chrono::steady_clock::now();
    if (ActiveConns.load() >= Opt.MaxConnections) {
      {
        std::lock_guard<std::mutex> L(StatsMutex);
        ++Counters.ConnectionsRejected;
      }
      // The rejected connection rides the normal flush machinery: the
      // error reply goes out as the loop gets to it, then the socket
      // closes.  Never admitted, never counted active.
      C->Admitted = false;
      C->ReadClosed = true;
      C->ParseDead = true;
      Completion Comp;
      Comp.ConnId = C->Id;
      Comp.Seq = C->NextSeq++;
      ++C->InFlight;
      Comp.Response = makeErrorResponse("server at its connection limit");
      Comp.CloseAfter = true;
      IoConn &Ref = *C;
      FdIndex.emplace(Fd, C.get());
      Conns.emplace(Ref.Id, std::move(C));
      Poll.add(Fd, /*R=*/false, /*W=*/true);
      Ref.IntRead = false;
      Ref.IntWrite = true;
      sequenceCompletion(Ref, std::move(Comp));
      if (tryWrite(Ref)) {
        updateInterest(Ref);
        maybeClose(Ref);
      }
      continue;
    }
    {
      std::lock_guard<std::mutex> L(StatsMutex);
      ++Counters.ConnectionsAccepted;
    }
    C->Admitted = true;
    ++ActiveConns;
    IoConn &Ref = *C;
    FdIndex.emplace(Fd, C.get());
    Conns.emplace(Ref.Id, std::move(C));
    Poll.add(Fd, /*R=*/true, /*W=*/false);
    Ref.IntRead = true;
    Ref.IntWrite = false;
  }
}

void Server::Impl::destroyConn(IoConn &C) {
  int Fd = C.Fd.fd();
  Poll.remove(Fd);
  FdIndex.erase(Fd);
  if (C.Admitted)
    --ActiveConns;
  Conns.erase(C.Id); // Destroys C; the SocketFd destructor closes the fd.
}

bool Server::Impl::maybeClose(IoConn &C) {
  if (C.OutPos < C.OutBuf.size())
    return true; // Response bytes still queued.
  if (C.CloseAfterFlush ||
      (C.ReadClosed && C.InFlight == 0 && C.Ready.empty())) {
    destroyConn(C);
    return false;
  }
  return true;
}

void Server::Impl::updateInterest(IoConn &C) {
  bool WindowOpen =
      Opt.InFlightWindow == 0 || C.InFlight < Opt.InFlightWindow;
  bool WantRead = !C.ReadClosed && WindowOpen;
  bool WantWrite = C.OutPos < C.OutBuf.size();
  if (WantRead != C.IntRead || WantWrite != C.IntWrite) {
    C.IntRead = WantRead;
    C.IntWrite = WantWrite;
    Poll.set(C.Fd.fd(), WantRead, WantWrite);
  }
}

bool Server::Impl::readInput(IoConn &C) {
  if (C.ReadClosed)
    return true;
  while (true) {
    // The admission window pauses *reading*, not just parsing: bytes the
    // kernel holds stay there as TCP backpressure until responses drain.
    if (Opt.InFlightWindow && C.InFlight >= Opt.InFlightWindow)
      break;
    size_t Old = C.InBuf.size();
    C.InBuf.resize(Old + kReadChunk);
    ssize_t N = ::recv(C.Fd.fd(), &C.InBuf[Old], kReadChunk, 0);
    if (N > 0) {
      C.InBuf.resize(Old + size_t(N));
      parseFrames(C);
      if (size_t(N) < kReadChunk)
        break; // Drained the kernel buffer.
      continue;
    }
    C.InBuf.resize(Old);
    if (N == 0) {
      // Clean EOF (or half-close): stop reading, but in-flight requests
      // still get their responses before the socket closes.
      C.ReadClosed = true;
      parseFrames(C);
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK)
      break;
    if (errno == EINTR)
      continue;
    destroyConn(C);
    return false;
  }
  return true;
}

void Server::Impl::parseFrames(IoConn &C, bool IgnoreWindow) {
  while (!C.ParseDead) {
    if (!IgnoreWindow && Opt.InFlightWindow &&
        C.InFlight >= Opt.InFlightWindow)
      break;
    size_t Avail = C.InBuf.size() - C.InPos;
    if (Avail < kFrameHeaderBytes)
      break;
    size_t PayloadBytes = 0;
    FrameStatus FS = decodeFrameHeader(
        reinterpret_cast<const unsigned char *>(C.InBuf.data()) + C.InPos,
        Opt.MaxFrameBytes, PayloadBytes);
    if (FS != FrameStatus::Ok) {
      // The stream position is unrecoverable after a framing error: answer
      // once -- in order, behind any pending responses -- then close.
      C.ParseDead = true;
      C.ReadClosed = true;
      Completion Comp;
      Comp.ConnId = C.Id;
      Comp.Seq = C.NextSeq++;
      ++C.InFlight;
      Comp.Response =
          failRequest(std::string("protocol error: ") + frameStatusName(FS));
      Comp.CloseAfter = true;
      sequenceCompletion(C, std::move(Comp));
      break;
    }
    if (Avail < kFrameHeaderBytes + PayloadBytes)
      break; // Frame still arriving.
    // Zero-copy hand-off: the payload is parsed straight out of the read
    // buffer; nothing below mutates InBuf while the view is live.
    std::string_view Payload(C.InBuf.data() + C.InPos + kFrameHeaderBytes,
                             PayloadBytes);
    C.InPos += kFrameHeaderBytes + PayloadBytes;
    processRequest(C, Payload);
  }
  if (C.InPos >= C.InBuf.size()) {
    C.InBuf.clear();
    C.InPos = 0;
  } else if (C.InPos > kReadChunk) {
    C.InBuf.erase(0, C.InPos);
    C.InPos = 0;
  }
}

void Server::Impl::processRequest(IoConn &C, std::string_view Payload) {
  auto AcceptTime = std::chrono::steady_clock::now();
  uint64_t Seq = C.NextSeq++;
  ++C.InFlight;
  ServiceRequest Req;
  std::string Error;
  if (!parseServiceRequest(Payload, Req, Error)) {
    // Framing is intact; answer (in order) and keep serving.  A request
    // that never parsed has no trace context to echo, traced or not.
    Completion Comp;
    Comp.ConnId = C.Id;
    Comp.Seq = Seq;
    Comp.Response = failRequest(Error);
    sequenceCompletion(C, std::move(Comp));
    return;
  }
  obs::EventLog &Events = obs::EventLog::global();
  // A trace is armed when the client asked for one, when the slow log
  // could need the span tree, or when the event ring wants request events
  // with ids.  Untraced otherwise: the handler path does zero extra work,
  // keeping the no-observers deployment at its old cost.
  const bool WantTrace = Req.Trace || Opt.SlowMs >= 0 || Events.enabled();
  obs::RequestTrace Trace;
  double ParseMs = 0;
  if (WantTrace) {
    std::string Id = Req.TraceId.empty()
                         ? obs::makeTraceId(TraceSalt, NextTraceSeq++)
                         : Req.TraceId;
    Trace.begin(std::move(Id), AcceptTime);
    Trace.Echo = Req.Trace;
    ParseMs = Trace.sinceBeginMs();
    Trace.addSpan("accept", 0, ParseMs);
  }
  if (Req.K == ServiceRequest::Kind::Ping ||
      Req.K == ServiceRequest::Kind::Stats) {
    // Answered on the IO thread: both are cheap, and stats must observe
    // the shards, not run inside one.
    auto Begin = std::chrono::steady_clock::now();
    if (WantTrace) {
      double DequeueMs = Trace.sinceBeginMs();
      Trace.addSpan("queue_wait", ParseMs, DequeueMs - ParseMs);
      Trace.DispatchStartMs = DequeueMs;
    }
    Events.record(obs::EventKind::RequestStart, 0, Trace.id().c_str(),
                  requestKindName(Req.K));
    const std::string EchoId = Trace.Echo ? Trace.id() : std::string();
    std::string Response;
    if (Req.K == ServiceRequest::Kind::Ping) {
      {
        std::lock_guard<std::mutex> L(StatsMutex);
        ++Counters.RequestsTotal;
        ++Counters.RequestsPing;
      }
      Response = makePongResponse(EchoId);
    } else {
      {
        std::lock_guard<std::mutex> L(StatsMutex);
        ++Counters.RequestsTotal;
        ++Counters.RequestsStats;
      }
      Response = makeStatsResponse(snapshotStats(), EchoId);
    }
    double ServiceMs = msSince(Begin);
    ServiceHist.record(ServiceMs);
    {
      std::lock_guard<std::mutex> L(StatsMutex);
      InlineBusyMs += ServiceMs;
    }
    if (WantTrace)
      Trace.addSpan("dispatch", Trace.DispatchStartMs,
                    Trace.sinceBeginMs() - Trace.DispatchStartMs);
    Completion Comp;
    Comp.ConnId = C.Id;
    Comp.Seq = Seq;
    Comp.Response = std::move(Response);
    Comp.TrackEnd = true;
    Comp.WantTrace = WantTrace;
    Comp.Trace = std::move(Trace);
    Comp.ServiceMs = ServiceMs;
    Comp.Kind = Req.K;
    sequenceCompletion(C, std::move(Comp));
    return;
  }
  // Content-hash routing: identical work always lands on the same shard,
  // so its private cache sees every repeat.
  ServiceRequest::Kind Kind = Req.K;
  Shard &Sh = *ShardList[size_t(routeRequestHash(Req) % NumShards)];
  bool Full = false;
  bool Saturated = false;
  {
    std::lock_guard<std::mutex> L(Sh.QMutex);
    if (Sh.Queue.size() >= Opt.QueueCapacity) {
      Full = true;
    } else {
      ShardJob Job;
      Job.ConnId = C.Id;
      Job.Seq = Seq;
      Job.Req = std::move(Req);
      Job.Trace = std::move(Trace);
      Job.WantTrace = WantTrace;
      Job.ParseMs = ParseMs;
      Sh.Queue.push_back(std::move(Job));
      Sh.QueueMaxDepth =
          std::max<uint64_t>(Sh.QueueMaxDepth, Sh.Queue.size());
      Saturated = Sh.Queue.size() >= Opt.QueueCapacity;
    }
  }
  if (Full) {
    // Admission control: a full shard queue turns into an immediate,
    // clean rejection the client can retry on -- never unbounded
    // buffering, never a stalled event loop.
    {
      std::lock_guard<std::mutex> L(StatsMutex);
      ++Counters.RequestsTotal;
      ++Counters.RequestsRejected;
    }
    Events.record(obs::EventKind::Reject, double(Opt.QueueCapacity),
                  Trace.id().c_str(), "shard queue full");
    Completion Comp;
    Comp.ConnId = C.Id;
    Comp.Seq = Seq;
    Comp.Response =
        makeErrorResponse("server overloaded: shard queue full, retry later",
                          Trace.Echo ? Trace.id() : std::string());
    Comp.Kind = Kind;
    sequenceCompletion(C, std::move(Comp));
    return;
  }
  ++OutstandingShardJobs;
  Sh.QCv.notify_one();
  if (Saturated)
    obs::EventLog::global().record(obs::EventKind::QueueSaturated,
                                   double(Opt.QueueCapacity));
}

void Server::Impl::sequenceCompletion(IoConn &C, Completion Comp) {
  C.Ready.emplace(Comp.Seq, std::move(Comp));
  // Flush the in-order prefix: a completion for request N waits here until
  // every response before N is in the output buffer.
  while (!C.Ready.empty() && C.Ready.begin()->first == C.NextFlushSeq) {
    Completion Next = std::move(C.Ready.begin()->second);
    C.Ready.erase(C.Ready.begin());
    appendResponse(C, Next);
    --C.InFlight;
    ++C.NextFlushSeq;
  }
}

void Server::Impl::appendResponse(IoConn &C, Completion &Comp) {
  // A response that cannot be framed (beyond the server's own bound)
  // becomes an error the client *can* read, instead of a frame its
  // readFrame would reject as oversized after the server paid the full
  // solve cost.
  const std::string *Out = &Comp.Response;
  std::string Fallback;
  if (Comp.Response.size() > Opt.MaxFrameBytes) {
    Fallback = makeErrorResponse(
        "response of " + std::to_string(Comp.Response.size()) +
        " bytes exceeds the server frame bound of " +
        std::to_string(Opt.MaxFrameBytes) +
        "; narrow the request (fewer suites/register counts or "
        "details=false) or raise --max-frame");
    Out = &Fallback;
  }
  FlushRecord R;
  R.TrackEnd = Comp.TrackEnd;
  R.WantTrace = Comp.WantTrace;
  R.ServiceMs = Comp.ServiceMs;
  R.Kind = Comp.Kind;
  R.FlushStartTime = std::chrono::steady_clock::now();
  if (Comp.WantTrace) {
    R.Trace = std::move(Comp.Trace);
    R.FlushStartMs = R.Trace.sinceBeginMs();
  }
  bool WasDrained = C.OutPos >= C.OutBuf.size();
  C.OutBuf += encodeFrameHeader(Out->size());
  C.OutBuf += *Out;
  C.BytesQueuedTotal += kFrameHeaderBytes + Out->size();
  R.EndOffset = C.BytesQueuedTotal;
  if (WasDrained)
    C.LastWriteProgress = R.FlushStartTime;
  C.Flushes.push_back(std::move(R));
  if (Comp.CloseAfter) {
    C.CloseAfterFlush = true;
    C.ReadClosed = true;
    C.ParseDead = true;
  }
}

bool Server::Impl::tryWrite(IoConn &C) {
  while (C.OutPos < C.OutBuf.size()) {
    ssize_t N = ::send(C.Fd.fd(), C.OutBuf.data() + C.OutPos,
                       C.OutBuf.size() - C.OutPos, MSG_NOSIGNAL);
    if (N > 0) {
      C.OutPos += size_t(N);
      C.BytesFlushedTotal += uint64_t(N);
      C.LastWriteProgress = std::chrono::steady_clock::now();
      while (!C.Flushes.empty() &&
             C.Flushes.front().EndOffset <= C.BytesFlushedTotal) {
        finalizeFlush(C.Flushes.front());
        C.Flushes.pop_front();
      }
      continue;
    }
    if (N < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
      break;
    if (N < 0 && errno == EINTR)
      continue;
    // A vanished or wedged client is not a server error -- its connection
    // is simply dropped.
    destroyConn(C);
    return false;
  }
  if (C.OutPos >= C.OutBuf.size()) {
    C.OutBuf.clear();
    C.OutPos = 0;
  } else if (C.OutPos > (256u << 10)) {
    C.OutBuf.erase(0, C.OutPos);
    C.OutPos = 0;
  }
  return true;
}

void Server::Impl::finalizeFlush(FlushRecord &R) {
  double FlushMs = msSince(R.FlushStartTime);
  double TotalMs = R.ServiceMs + FlushMs;
  if (R.WantTrace)
    R.Trace.addSpan("response_flush", R.FlushStartMs, FlushMs);
  if (!R.TrackEnd)
    return;
  obs::EventLog::global().record(obs::EventKind::RequestEnd, TotalMs,
                                 R.Trace.id().c_str(),
                                 requestKindName(R.Kind));
  if (Opt.SlowMs >= 0 && TotalMs >= Opt.SlowMs)
    emitSlowRequest(R.Trace, TotalMs, R.Kind);
}

void Server::Impl::drainCompletions() {
  std::vector<Completion> Batch;
  {
    std::lock_guard<std::mutex> L(CompMutex);
    Batch.swap(Completions);
  }
  for (Completion &Comp : Batch) {
    --OutstandingShardJobs;
    auto It = Conns.find(Comp.ConnId);
    if (It == Conns.end())
      continue; // Connection died while its request was in flight.
    IoConn &C = *It->second;
    sequenceCompletion(C, std::move(Comp));
    // A response left the window; buffered frames may be parseable now.
    parseFrames(C);
    if (!tryWrite(C))
      continue;
    updateInterest(C);
    maybeClose(C);
  }
}

void Server::Impl::checkWriteTimeouts() {
  if (Opt.WriteTimeoutMs < 0)
    return;
  std::vector<uint64_t> Stale;
  for (const auto &E : Conns) {
    IoConn &C = *E.second;
    if (C.OutPos < C.OutBuf.size() &&
        msSince(C.LastWriteProgress) > Opt.WriteTimeoutMs)
      Stale.push_back(E.first);
  }
  for (uint64_t Id : Stale) {
    auto It = Conns.find(Id);
    if (It != Conns.end())
      destroyConn(*It->second);
  }
}

void Server::Impl::shardLoop(Shard &Sh) {
  while (true) {
    ShardJob Job;
    {
      std::unique_lock<std::mutex> L(Sh.QMutex);
      Sh.QCv.wait(L, [&Sh] { return !Sh.Queue.empty() || Sh.Drain; });
      if (Sh.Queue.empty())
        return; // Draining and fully drained.
      Job = std::move(Sh.Queue.front());
      Sh.Queue.pop_front();
    }
    auto Begin = std::chrono::steady_clock::now();
    obs::RequestTrace &Trace = Job.Trace;
    if (Job.WantTrace) {
      double DequeueMs = Trace.sinceBeginMs();
      Trace.addSpan("queue_wait", Job.ParseMs, DequeueMs - Job.ParseMs);
      Trace.DispatchStartMs = DequeueMs;
      Trace.ShardId = int(Sh.Index);
    }
    obs::EventLog::global().record(obs::EventKind::RequestStart, 0,
                                   Trace.id().c_str(),
                                   requestKindName(Job.Req.K));
    obs::RequestTrace *TracePtr = Job.WantTrace ? &Trace : nullptr;
    std::string Response =
        Job.Req.K == ServiceRequest::Kind::Allocate
            ? handleAllocate(Sh, Job.Req, TracePtr)
            : handleSubmitIr(Sh, Job.Req, TracePtr);
    double ServiceMs = msSince(Begin);
    ServiceHist.record(ServiceMs);
    {
      std::lock_guard<std::mutex> L(Sh.StatMutex);
      Sh.BusyMs += ServiceMs;
      ++Sh.Requests;
    }
    // Handlers close the dispatch span once they know where dispatch work
    // ends (driver start).  Paths that never got there -- validation
    // rejections -- close it here, covering the whole handler.
    if (Job.WantTrace && !Trace.hasSpan("dispatch"))
      Trace.addSpan("dispatch", Trace.DispatchStartMs,
                    Trace.sinceBeginMs() - Trace.DispatchStartMs);
    Completion Comp;
    Comp.ConnId = Job.ConnId;
    Comp.Seq = Job.Seq;
    Comp.Response = std::move(Response);
    Comp.TrackEnd = true;
    Comp.WantTrace = Job.WantTrace;
    Comp.Trace = std::move(Job.Trace);
    Comp.ServiceMs = ServiceMs;
    Comp.Kind = Job.Req.K;
    postCompletion(std::move(Comp));
  }
}

void Server::Impl::emitSlowRequest(const obs::RequestTrace &Trace,
                                   double TotalMs, ServiceRequest::Kind K) {
  obs::EventLog::global().record(obs::EventKind::SlowRequest, TotalMs,
                                 Trace.id().c_str(), requestKindName(K));
  JsonValue Line = JsonValue::object();
  Line.set("event", "slow_request");
  Line.set("kind", requestKindName(K));
  Line.set("total_ms", TotalMs);
  Line.set("trace", Trace.toJson());
  std::string Text = Line.dump(0) + "\n";
  std::FILE *Out = Opt.SlowLog ? Opt.SlowLog : stderr;
  std::fwrite(Text.data(), 1, Text.size(), Out);
  std::fflush(Out);
}

std::string Server::Impl::failRequest(const std::string &Message,
                                      const obs::RequestTrace *Trace) {
  {
    std::lock_guard<std::mutex> L(StatsMutex);
    ++Counters.RequestsTotal;
    ++Counters.RequestsFailed;
  }
  obs::EventLog::global().record(obs::EventKind::Reject, 0,
                                 Trace ? Trace->id().c_str() : nullptr,
                                 Message.c_str());
  return makeErrorResponse(Message, Trace && Trace->Echo ? Trace->id()
                                                         : std::string());
}

std::string Server::Impl::validateCommon(const ServiceRequest &Req,
                                         const obs::RequestTrace *Trace) {
  const TargetDesc *Target = targetByName(Req.TargetName);
  if (!Target)
    return failRequest("unknown target '" + Req.TargetName + "'", Trace);
  for (const ClassRegOverride &O : Req.ClassRegs)
    if (Target->classIdByName(O.Class) < 0)
      return failRequest("target '" + Req.TargetName +
                             "' has no register class '" + O.Class + "'",
                         Trace);
  if (!makeAllocator(Req.Options.AllocatorName))
    return failRequest("unknown allocator '" + Req.Options.AllocatorName +
                           "'",
                       Trace);
  return std::string();
}

std::string Server::Impl::runJobs(Shard &Sh,
                                  const std::vector<BatchJob> &Jobs,
                                  const ServiceRequest &Req,
                                  uint64_t ServerStats::*Counter,
                                  obs::RequestTrace *Trace) {
  // The dispatch span covers dequeue to driver start (validation, suite
  // lookup, job building); the driver span is the solve itself.
  double DriverStart = 0;
  if (Trace) {
    DriverStart = Trace->sinceBeginMs();
    Trace->addSpan("dispatch", Trace->DispatchStartMs,
                   DriverStart - Trace->DispatchStartMs);
  }
  uint64_t EvictionsBefore = Sh.Driver.pipelineCacheCounters().Evictions;
  // Transparent mode makes the response byte-identical to a direct fresh
  // BatchDriver run of the same jobs, however warm the shard's cache or
  // the disk cache is.  A *timing* request gets the honest warm-cache view
  // instead: with transparency its wall_ms would read 0 for tasks the
  // persistent cache served while cache_hit claimed a fresh solve --
  // self-contradictory.  Byte identity is only promised for timing-free
  // responses anyway (docs/PROTOCOL.md).
  std::vector<PhaseTotals> JobPhases;
  DriverReport Report = Sh.Driver.run(Jobs, /*CacheTransparent=*/!Req.Timing,
                                      Trace ? &JobPhases : nullptr);
  if (Trace) {
    Trace->addSpan("driver", DriverStart,
                   Trace->sinceBeginMs() - DriverStart);
    Trace->attachJobPhases(std::move(JobPhases));
    uint64_t Evicted =
        Sh.Driver.pipelineCacheCounters().Evictions - EvictionsBefore;
    if (Evicted > 0)
      obs::EventLog::global().record(obs::EventKind::CachePressure,
                                     double(Evicted), Trace->id().c_str());
  }
  JsonValue Doc = driverReportToJson(Report, Req.Timing, Req.Details);
  // The span tree lands after every report member (JsonValue::set appends
  // new keys), so a traced response differs from an untraced one only by
  // the trailing "trace" object -- ServerLoopbackTest holds us to that.
  if (Trace && Trace->Echo)
    Doc.set("trace", Trace->toJson());
  std::string Response = Doc.dump(2) + "\n";
  {
    std::lock_guard<std::mutex> L(StatsMutex);
    ++Counters.RequestsTotal;
    ++(Counters.*Counter);
  }
  {
    std::lock_guard<std::mutex> L(Sh.StatMutex);
    Sh.Cache = Sh.Driver.pipelineCacheCounters();
    Sh.Delta = Sh.Driver.deltaCounters();
  }
  return Response;
}

std::string Server::Impl::handleAllocate(Shard &Sh,
                                         const ServiceRequest &Req,
                                         obs::RequestTrace *Trace) {
  std::string Rejection = validateCommon(Req, Trace);
  if (!Rejection.empty())
    return Rejection;
  std::vector<std::string> Known = allSuiteNames();
  for (const std::string &Name : Req.Suites)
    if (std::find(Known.begin(), Known.end(), Name) == Known.end())
      return failRequest("unknown suite '" + Name + "'", Trace);

  const TargetDesc *Target = targetByName(Req.TargetName);
  std::vector<BatchJob> Jobs;
  for (const std::string &Name : Req.Suites) {
    auto It = Sh.SuiteCache.find(Name);
    if (It == Sh.SuiteCache.end())
      It = Sh.SuiteCache.emplace(Name, makeSuite(Name)).first;
    // A suite with multi-class functions needs a target with those files
    // (e.g. mixed-classes on plain st231 must be a request error, not a
    // driver abort).
    for (const SuiteProgram &Prog : It->second.Programs)
      for (const Function &F : Prog.Functions)
        if (std::string E = checkFunctionClasses(F, *Target); !E.empty())
          return failRequest("suite '" + Name + "': " + E, Trace);
    for (unsigned Regs : Req.Regs) {
      BatchJob Job;
      Job.SuiteName = Name;
      Job.SuiteData = &It->second;
      Job.Target = *Target;
      Job.NumRegisters = Regs;
      Job.ClassRegs = Req.ClassRegs;
      Job.Options = Req.Options;
      Jobs.push_back(std::move(Job));
    }
  }
  return runJobs(Sh, Jobs, Req, &ServerStats::RequestsAllocate, Trace);
}

std::string Server::Impl::handleSubmitIr(Shard &Sh,
                                         const ServiceRequest &Req,
                                         obs::RequestTrace *Trace) {
  std::string Rejection = validateCommon(Req, Trace);
  if (!Rejection.empty())
    return Rejection;
  // validateCommon just proved the target exists; one lookup serves the
  // class check and the job construction below.
  const TargetDesc *Target = targetByName(Req.TargetName);
  ParsedFunction Parsed = parseFunction(Req.IrText);
  if (!Parsed.Ok)
    return failRequest("ir parse error at line " +
                           std::to_string(Parsed.Line) + ": " + Parsed.Error,
                       Trace);
  std::string VerifyError;
  if (!verifyFunction(Parsed.F, /*ExpectSsa=*/true, &VerifyError))
    return failRequest("ir is not strict SSA: " + VerifyError, Trace);
  // Reject class ids the target has no file for before the pipeline's
  // fatal-error path can see them.
  if (std::string E = checkFunctionClasses(Parsed.F, *Target); !E.empty())
    return failRequest(E, Trace);

  Suite S;
  S.Name = Req.Name.empty() ? "submitted" : Req.Name;
  SuiteProgram Prog;
  Prog.Name = Parsed.F.name();
  Prog.Functions.push_back(std::move(Parsed.F));
  S.Programs.push_back(std::move(Prog));

  // Delta mode: a "base" key must name a base this shard has retained.
  // Routing already sent every submission of a function (and every delta
  // against it) to the same shard, so absence here means the client named
  // a base the server never solved -- or one evicted from the bounded
  // registry -- and a silent full solve would hide that; the contract is
  // an explicit error the client answers by resubmitting without "base".
  // A plain submission instead *retains* a base under the IR's content
  // key so later edits can warm-start against it.  The driver asserts a
  // job never carries both keys.
  uint64_t BaseKey = 0, RetainKey = 0;
  if (Req.BaseKey) {
    if (!Sh.Driver.hasBase(Req.BaseKey))
      return failRequest("base not found: '" + Req.Base +
                             "' (submit the function without 'base' first; "
                             "bases are retained per shard and may have "
                             "been evicted)",
                         Trace);
    BaseKey = Req.BaseKey;
  } else {
    RetainKey = submitIrBaseKey(Req.IrText);
  }

  std::vector<BatchJob> Jobs;
  for (unsigned Regs : Req.Regs) {
    BatchJob Job;
    Job.SuiteName = S.Name;
    Job.SuiteData = &S;
    Job.Target = *Target;
    Job.NumRegisters = Regs;
    Job.ClassRegs = Req.ClassRegs;
    Job.Options = Req.Options;
    Job.BaseKey = BaseKey;
    Job.RetainKey = RetainKey;
    Jobs.push_back(std::move(Job));
  }
  return runJobs(Sh, Jobs, Req, &ServerStats::RequestsSubmitIr, Trace);
}

ServerStats Server::Impl::snapshotStats() {
  // The histogram is wait-free concurrent state; read it before taking
  // StatsMutex so a slow percentile walk never extends the lock hold.
  HistogramSnapshot Latency = ServiceHist.snapshot();
  Latency.Name = "layra.serve.service_ms";
  ServerStats S;
  double BusyMs = 0;
  {
    std::lock_guard<std::mutex> L(StatsMutex);
    S = Counters;
    BusyMs = InlineBusyMs;
  }
  S.UptimeMs = msSince(StartTime);
  S.PerShard.reserve(ShardList.size());
  for (const auto &ShPtr : ShardList) {
    Shard &Sh = *ShPtr;
    ShardStats E;
    DriverCacheCounters CC;
    DriverDeltaCounters DC;
    {
      std::lock_guard<std::mutex> L(Sh.StatMutex);
      E.Requests = Sh.Requests;
      E.BusyMs = Sh.BusyMs;
      CC = Sh.Cache;
      DC = Sh.Delta;
    }
    {
      std::lock_guard<std::mutex> L(Sh.QMutex);
      E.QueueDepth = Sh.Queue.size();
      E.QueueMaxDepth = Sh.QueueMaxDepth;
    }
    E.QueueCapacity = Opt.QueueCapacity;
    E.CacheEntries = CC.Entries;
    E.CacheCapacity = CC.Capacity;
    E.CacheHits = CC.Hits;
    E.CacheMisses = CC.Misses;
    E.CacheEvictions = CC.Evictions;
    E.DeltaHits = DC.Hits;
    E.DeltaFallbacks = DC.Fallbacks;
    E.DeltaBases = DC.Bases;
    S.DeltaHits += E.DeltaHits;
    S.DeltaFallbacks += E.DeltaFallbacks;
    S.DeltaBases += E.DeltaBases;
    S.CacheEntries += E.CacheEntries;
    S.CacheCapacity += E.CacheCapacity;
    S.CacheHits += E.CacheHits;
    S.CacheMisses += E.CacheMisses;
    S.CacheEvictions += E.CacheEvictions;
    S.QueueDepth += E.QueueDepth;
    S.QueueMaxDepth = std::max(S.QueueMaxDepth, E.QueueMaxDepth);
    BusyMs += E.BusyMs;
    S.PerShard.push_back(std::move(E));
  }
  S.QueueCapacity = uint64_t(Opt.QueueCapacity) * NumShards;
  S.DispatcherBusyMs = BusyMs;
  S.DispatcherUtilization =
      S.UptimeMs > 0 ? std::min(1.0, BusyMs / S.UptimeMs) : 0.0;
  S.ConnectionsActive = ActiveConns.load();
  if (Disk && Disk->valid()) {
    S.DiskCacheEnabled = true;
    DiskCacheStats D = Disk->stats();
    S.DiskEntries = D.Entries;
    S.DiskBytes = D.Bytes;
    S.DiskHits = D.Hits;
    S.DiskMisses = D.Misses;
    S.DiskWrites = D.Writes;
    S.DiskEvictions = D.Evictions;
    S.DiskTouchFailures = D.TouchFailures;
  }
  S.ServiceSamples = Latency.Count;
  S.ServiceMsP50 = Latency.percentile(0.50);
  S.ServiceMsP95 = Latency.percentile(0.95);
  S.ServiceMsP99 = Latency.percentile(0.99);
  S.ServiceLatency = std::move(Latency);
  return S;
}

//===----------------------------------------------------------------------===//
// Server
//===----------------------------------------------------------------------===//

Server::Server(ServerOptions Options)
    : State(std::make_unique<Impl>(std::move(Options))) {}

Server::~Server() {
  requestStop();
  wait();
}

bool Server::start(std::string *Error) { return State->start(Error); }

void Server::requestStop() {
  if (State->Started)
    State->requestStop();
}

void Server::wait() { State->wait(); }

bool Server::running() const { return State->Started && !State->Drained; }

uint16_t Server::tcpPort() const { return State->BoundTcpPort; }

const std::string &Server::unixPath() const { return State->Opt.UnixPath; }

ServerStats Server::stats() const { return State->snapshotStats(); }
