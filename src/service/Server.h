//===- service/Server.h - Long-running allocation server --------*- C++ -*-===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The long-running allocation server behind the `layra-serve` binary.  It
/// listens on TCP and/or Unix-domain sockets and speaks the framed JSON
/// protocol of service/Protocol.h.
///
/// Threading model (the sharded event-loop core): ONE IO thread runs an
/// epoll (level-triggered; poll(2) fallback off Linux) event loop over
/// every listener and connection.  Connections are non-blocking; frames
/// are sliced out of per-connection read buffers without intermediate
/// copies and parsed in place.  Parsed allocate/submit_ir requests are
/// routed by content hash (routeRequestHash) to one of N shared-nothing
/// shard workers -- each shard owns a private BatchDriver (thread pool,
/// SolverWorkspace arenas, bounded content-hash LRU) so the hot path has
/// no cross-shard locks and the same work always lands on the same warm
/// cache.  Ping/stats and protocol errors are answered on the IO thread
/// itself.  Responses flow back through a per-connection ordered flush
/// queue keyed by per-connection sequence numbers, so pipelined clients
/// always see responses in request order no matter which shard finished
/// first.
///
/// Backpressure is two-level: each connection has a bounded in-flight
/// window (reading pauses while it is full, per-client fairness), and
/// each shard has a bounded queue -- a request arriving at a full shard
/// queue is *rejected* with an error reply and a Reject event rather
/// than buffered without bound.
///
/// Underneath the shard LRUs an optional persistent disk cache
/// (service/DiskCache.h, --disk-cache) stores every solved outcome
/// content-addressed by pipeline key, warm-starting shards across
/// process restarts.
///
/// Responses to `allocate`/`submit_ir` are byte-identical to what a direct
/// BatchDriver run of the same jobs would serialize (the driver's
/// cache-transparent mode reports hit/miss as a fresh driver would), so a
/// client cannot tell -- except by latency -- whether the shard cache or
/// the disk cache was warm.
///
/// Shutdown (requestStop / SIGTERM in layra-serve) is a drain, not an
/// abort: listeners close, already-buffered complete frames are still
/// dispatched, queued requests execute, and their responses are flushed
/// before wait() returns.
///
//===----------------------------------------------------------------------===//

#ifndef LAYRA_SERVICE_SERVER_H
#define LAYRA_SERVICE_SERVER_H

#include "obs/Metrics.h"
#include "service/Protocol.h"

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

namespace layra {

/// Server configuration.  At least one of UnixPath / EnableTcp must be set.
struct ServerOptions {
  /// Unix-domain socket path; empty disables the Unix listener.  The file
  /// is created on start() and unlinked again when wait() finishes.
  std::string UnixPath;
  /// Enable the TCP listener.
  bool EnableTcp = false;
  /// TCP bind address; loopback by default (the service is unauthenticated
  /// by design -- see docs/PROTOCOL.md).
  std::string TcpHost = "127.0.0.1";
  /// TCP port; 0 picks an ephemeral port, read back with tcpPort().
  uint16_t TcpPort = 0;
  /// Driver pool size *per shard*; 0 = hardware concurrency.
  unsigned Threads = 0;
  /// Number of shared-nothing shard workers.  Each shard owns a private
  /// BatchDriver; requests are routed by routeRequestHash(Req) % Shards.
  /// 0 is normalized to 1.
  unsigned Shards = 1;
  /// Total bound across all shard content-hash caches, in entries; each
  /// shard gets CacheCapacity / Shards (at least 1).  The default keeps a
  /// long-lived server's memory proportional to the working set;
  /// 0 (unbounded) is for tests only.
  size_t CacheCapacity = 1u << 16;
  /// Largest accepted request/response payload.
  size_t MaxFrameBytes = kDefaultMaxFrameBytes;
  /// Bounded *per-shard* request-queue depth.  A request routed to a full
  /// shard queue is rejected with an error reply (and a Reject event)
  /// instead of buffered without bound.
  size_t QueueCapacity = 64;
  /// Per-connection in-flight request window: the IO loop stops parsing
  /// further frames from a connection while this many of its requests are
  /// dispatched-but-unflushed, so one pipelining client cannot occupy
  /// every shard queue slot.  0 = unbounded.
  unsigned InFlightWindow = 32;
  /// Persistent disk-cache directory (service/DiskCache.h); empty
  /// disables it.  Shared by all shards underneath their in-memory LRUs.
  std::string DiskCacheDir;
  /// Byte cap for the disk cache; 0 = unbounded.
  uint64_t DiskCacheCapBytes = 0;
  /// Concurrent-connection cap; excess connections get an error response
  /// and are closed.
  unsigned MaxConnections = 256;
  /// Response-write progress bound: a connection with queued response
  /// bytes whose peer accepts none of them for this long is dropped.
  /// Without a bound a client that stops reading would pin its buffered
  /// responses forever -- and wedge the graceful drain.
  int WriteTimeoutMs = 10000;
  /// Slow-request log threshold in milliseconds; negative (the default)
  /// disables the log.  At >= 0, any request whose dispatch-to-flush
  /// time reaches the bound emits its full span tree (including
  /// response_flush, which the echoed trace cannot carry) as one JSON
  /// line on SlowLog.  0 therefore logs every request -- the knob CI
  /// uses to force a slow-request record deterministically.
  double SlowMs = -1;
  /// Slow-request log destination; nullptr means stderr.  The stream
  /// is written only by the IO thread.
  std::FILE *SlowLog = nullptr;
  /// Salt for server-generated trace ids; 0 (the default) salts from
  /// the clock at start().  Tests pin it for reproducible ids.
  uint64_t TraceIdSalt = 0;
  /// Total bound across all shard base registries (retained warm-start
  /// bases for submit_ir delta mode), in entries; each shard gets
  /// BaseRegistryCapacity / Shards (at least 1).  A retained base holds
  /// its SSA function, liveness, and round-0 problem/assignment, so the
  /// default is deliberately far below CacheCapacity.  0 = unbounded
  /// (tests only).
  size_t BaseRegistryCapacity = 256;
};

/// Per-shard slice of a statistics snapshot (the stats-v3 `shards` array).
struct ShardStats {
  uint64_t Requests = 0; ///< allocate/submit_ir requests this shard served.
  /// This shard's pipeline-task cache counters (lifetime, from its
  /// private driver).
  uint64_t CacheEntries = 0;
  uint64_t CacheCapacity = 0;
  uint64_t CacheHits = 0;
  uint64_t CacheMisses = 0;
  uint64_t CacheEvictions = 0;
  uint64_t QueueDepth = 0;
  uint64_t QueueMaxDepth = 0;
  uint64_t QueueCapacity = 0;
  double BusyMs = 0; ///< Wall time this shard's worker spent executing.
  /// Delta (warm-start) counters from this shard's private driver:
  /// resubmissions solved against a retained base, resubmissions that
  /// asked for a base but fell back to a full solve, and bases currently
  /// retained.
  uint64_t DeltaHits = 0;
  uint64_t DeltaFallbacks = 0;
  uint64_t DeltaBases = 0;
};

/// A point-in-time statistics snapshot (the `stats` request serializes
/// exactly this).
struct ServerStats {
  uint64_t RequestsTotal = 0;
  uint64_t RequestsAllocate = 0;
  uint64_t RequestsSubmitIr = 0;
  uint64_t RequestsStats = 0;
  uint64_t RequestsPing = 0;
  uint64_t RequestsFailed = 0;   ///< Parse/validation errors answered.
  uint64_t RequestsRejected = 0; ///< Shard-queue-full admission rejects.
  uint64_t ConnectionsAccepted = 0;
  uint64_t ConnectionsRejected = 0;
  uint64_t ConnectionsActive = 0;
  /// Pipeline-task cache counters summed over every shard's private
  /// driver (lifetime).
  uint64_t CacheEntries = 0;
  uint64_t CacheCapacity = 0;
  uint64_t CacheHits = 0;
  uint64_t CacheMisses = 0;
  uint64_t CacheEvictions = 0;
  /// Shard-queue occupancy: depth summed over shards, max_depth the
  /// highest any single shard queue reached, capacity the total slots.
  uint64_t QueueDepth = 0;
  uint64_t QueueMaxDepth = 0;
  uint64_t QueueCapacity = 0;
  unsigned Threads = 0;
  double UptimeMs = 0;
  /// Service-time (dequeue to response-built) percentiles over the whole
  /// lifetime histogram; 0 when no samples yet.
  double ServiceMsP50 = 0;
  double ServiceMsP95 = 0;
  double ServiceMsP99 = 0;
  uint64_t ServiceSamples = 0;
  /// The full service-time histogram (log-linear buckets, obs/Metrics.h);
  /// the percentiles above are read from this snapshot.
  HistogramSnapshot ServiceLatency;
  /// Wall time spent executing requests, summed over the shard workers
  /// plus inline (ping/stats) handling on the IO thread.
  double DispatcherBusyMs = 0;
  /// DispatcherBusyMs / UptimeMs, clamped to [0, 1].  With N shards this
  /// saturates at 1.0 per the v2 contract even though N workers can be
  /// busy at once; the per-shard busy_ms below carry the full picture.
  double DispatcherUtilization = 0;
  /// Per-shard breakdown, one entry per shard in shard order.
  std::vector<ShardStats> PerShard;
  /// Persistent disk-cache counters; meaningful when DiskCacheEnabled.
  bool DiskCacheEnabled = false;
  uint64_t DiskEntries = 0;
  uint64_t DiskBytes = 0;
  uint64_t DiskHits = 0;
  uint64_t DiskMisses = 0;
  uint64_t DiskWrites = 0;
  uint64_t DiskEvictions = 0;
  /// Loads whose recency touch (utimensat) failed; the entry was still
  /// served, but LRU eviction order is degraded for it.
  uint64_t DiskTouchFailures = 0;
  /// Delta (warm-start) counters summed over every shard's private
  /// driver; DeltaBases counts bases currently retained across shards.
  uint64_t DeltaHits = 0;
  uint64_t DeltaFallbacks = 0;
  uint64_t DeltaBases = 0;
};

/// Serializes \p Stats as a "layra-serve-stats/v4" response payload.  Each
/// schema is a strict superset of its predecessor: v3 added
/// requests.rejected, the per-shard `shards` array, and the `disk_cache`
/// object over v2; v4 adds disk_cache.touch_failures and the `delta`
/// object (warm-start counters).  A non-empty \p TraceId appends the
/// {"trace": {"id": ...}} echo for traced requests.
std::string makeStatsResponse(const ServerStats &Stats,
                              const std::string &TraceId = std::string());

/// Renders \p Stats plus the process-wide metrics registry snapshot as a
/// Prometheus-style text exposition (`layra-serve --metrics-dump=FILE`,
/// written on SIGUSR1 and at drain).
std::string makeMetricsExposition(const ServerStats &Stats);

/// The server.  Typical use:
///
/// \code
///   ServerOptions Opt;
///   Opt.UnixPath = "/tmp/layra.sock";
///   Server S(Opt);
///   std::string Error;
///   if (!S.start(&Error)) { ... }
///   // ... requestStop() from a signal handler's watcher ...
///   S.wait();
/// \endcode
class Server {
public:
  explicit Server(ServerOptions Options);
  /// Joins everything (equivalent to requestStop() + wait()).
  ~Server();

  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// Binds listeners and starts the accept/dispatch machinery.  False (with
  /// *Error filled) when no listener could be created; the server is then
  /// inert and wait() returns immediately.
  bool start(std::string *Error);

  /// Initiates a graceful drain: stop accepting, unblock idle connections,
  /// finish queued requests.  Thread-safe and idempotent; returns without
  /// waiting (use wait()).
  void requestStop();

  /// Blocks until the server has fully drained after requestStop().
  void wait();

  /// True between a successful start() and the end of wait().
  bool running() const;

  /// The bound TCP port (resolves an ephemeral request); 0 when TCP is
  /// disabled or start() failed.
  uint16_t tcpPort() const;

  /// The Unix socket path ("" when disabled).
  const std::string &unixPath() const;

  /// Point-in-time statistics (same data a `stats` request returns).
  ServerStats stats() const;

private:
  struct Impl;
  std::unique_ptr<Impl> State;
};

} // namespace layra

#endif // LAYRA_SERVICE_SERVER_H
