//===- service/Server.h - Long-running allocation server --------*- C++ -*-===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The long-running allocation server behind the `layra-serve` binary.  It
/// listens on TCP and/or Unix-domain sockets, speaks the framed JSON
/// protocol of service/Protocol.h, and serves requests from one shared
/// BatchDriver so the thread pool, the per-worker SolverWorkspace arenas,
/// and the bounded content-hash cache all persist across connections --
/// the amortization a one-shot CLI pays for on every invocation.
///
/// Threading model: one reader thread per connection parses frames and
/// pushes requests onto a *bounded* queue; pushing blocks when the queue is
/// full, so a flood of requests turns into TCP backpressure instead of
/// unbounded buffering.  A single dispatcher thread pops requests in FIFO
/// order and executes them on the shared driver -- each request then fans
/// its per-function tasks across the driver's work-stealing pool, so
/// parallelism lives *inside* a request.  Serializing requests at the
/// dispatcher keeps the driver single-threaded (its caches are lock-free
/// serial code) and gives every request an honest queue-wait measurement.
///
/// Responses to `allocate`/`submit_ir` are byte-identical to what a direct
/// BatchDriver run of the same jobs would serialize (the driver's
/// cache-transparent mode reports hit/miss as a fresh driver would), so a
/// client cannot tell -- except by latency -- whether the cache was warm.
///
/// Shutdown (requestStop / SIGTERM in layra-serve) is a drain, not an
/// abort: listeners close, idle connections are shut down, requests already
/// accepted still execute and their responses are written before wait()
/// returns.
///
//===----------------------------------------------------------------------===//

#ifndef LAYRA_SERVICE_SERVER_H
#define LAYRA_SERVICE_SERVER_H

#include "obs/Metrics.h"
#include "service/Protocol.h"

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>

namespace layra {

/// Server configuration.  At least one of UnixPath / EnableTcp must be set.
struct ServerOptions {
  /// Unix-domain socket path; empty disables the Unix listener.  The file
  /// is created on start() and unlinked again when wait() finishes.
  std::string UnixPath;
  /// Enable the TCP listener.
  bool EnableTcp = false;
  /// TCP bind address; loopback by default (the service is unauthenticated
  /// by design -- see docs/PROTOCOL.md).
  std::string TcpHost = "127.0.0.1";
  /// TCP port; 0 picks an ephemeral port, read back with tcpPort().
  uint16_t TcpPort = 0;
  /// Driver pool size; 0 = hardware concurrency.
  unsigned Threads = 0;
  /// Bound on each driver content-hash cache, in entries.  The default
  /// keeps a long-lived server's memory proportional to the working set;
  /// 0 (unbounded) is for tests only.
  size_t CacheCapacity = 1u << 16;
  /// Largest accepted request/response payload.
  size_t MaxFrameBytes = kDefaultMaxFrameBytes;
  /// Bounded request-queue depth; connection readers block (backpressure)
  /// when it is full.
  size_t QueueCapacity = 64;
  /// Concurrent-connection cap; excess connections get an error response
  /// and are closed.
  unsigned MaxConnections = 256;
  /// Response-write progress bound: a connection whose peer accepts no
  /// bytes for this long is dropped.  The dispatcher writes responses, so
  /// without a bound one client that stops reading would stall every
  /// other connection -- and wedge the graceful drain.
  int WriteTimeoutMs = 10000;
  /// Slow-request log threshold in milliseconds; negative (the default)
  /// disables the log.  At >= 0, any request whose dispatch-to-flush
  /// time reaches the bound emits its full span tree (including
  /// response_flush, which the echoed trace cannot carry) as one JSON
  /// line on SlowLog.  0 therefore logs every request -- the knob CI
  /// uses to force a slow-request record deterministically.
  double SlowMs = -1;
  /// Slow-request log destination; nullptr means stderr.  The stream
  /// is written only by the dispatcher thread.
  std::FILE *SlowLog = nullptr;
  /// Salt for server-generated trace ids; 0 (the default) salts from
  /// the clock at start().  Tests pin it for reproducible ids.
  uint64_t TraceIdSalt = 0;
};

/// A point-in-time statistics snapshot (the `stats` request serializes
/// exactly this).
struct ServerStats {
  uint64_t RequestsTotal = 0;
  uint64_t RequestsAllocate = 0;
  uint64_t RequestsSubmitIr = 0;
  uint64_t RequestsStats = 0;
  uint64_t RequestsPing = 0;
  uint64_t RequestsFailed = 0; ///< Parse/validation errors answered.
  uint64_t ConnectionsAccepted = 0;
  uint64_t ConnectionsRejected = 0;
  uint64_t ConnectionsActive = 0;
  /// Pipeline-task cache counters (lifetime, from the shared driver).
  uint64_t CacheEntries = 0;
  uint64_t CacheCapacity = 0;
  uint64_t CacheHits = 0;
  uint64_t CacheMisses = 0;
  uint64_t CacheEvictions = 0;
  uint64_t QueueDepth = 0;
  uint64_t QueueMaxDepth = 0;
  uint64_t QueueCapacity = 0;
  unsigned Threads = 0;
  double UptimeMs = 0;
  /// Service-time (dequeue to response-built) percentiles over the whole
  /// lifetime histogram; 0 when no samples yet.
  double ServiceMsP50 = 0;
  double ServiceMsP95 = 0;
  double ServiceMsP99 = 0;
  uint64_t ServiceSamples = 0;
  /// The full service-time histogram (log-linear buckets, obs/Metrics.h);
  /// the percentiles above are read from this snapshot.
  HistogramSnapshot ServiceLatency;
  /// Wall time the dispatcher spent executing requests (excludes idle
  /// queue waits and response writes of prebuilt error replies).
  double DispatcherBusyMs = 0;
  /// DispatcherBusyMs / UptimeMs, clamped to [0, 1].  A dispatcher pegged
  /// near 1.0 is the request-serialization bottleneck; near 0 the pool is
  /// idle and latency is dominated by queue arrival gaps.
  double DispatcherUtilization = 0;
};

/// Serializes \p Stats as a "layra-serve-stats/v2" response payload.  v2 is
/// a strict superset of v1: all v1 fields keep their name and meaning, and
/// v2 adds latency.service_ms_p99, latency.histogram (cumulative bucket
/// array), and the dispatcher{busy_ms, utilization} object.  A non-empty
/// \p TraceId appends the {"trace": {"id": ...}} echo for traced requests.
std::string makeStatsResponse(const ServerStats &Stats,
                              const std::string &TraceId = std::string());

/// Renders \p Stats plus the process-wide metrics registry snapshot as a
/// Prometheus-style text exposition (`layra-serve --metrics-dump=FILE`,
/// written on SIGUSR1 and at drain).
std::string makeMetricsExposition(const ServerStats &Stats);

/// The server.  Typical use:
///
/// \code
///   ServerOptions Opt;
///   Opt.UnixPath = "/tmp/layra.sock";
///   Server S(Opt);
///   std::string Error;
///   if (!S.start(&Error)) { ... }
///   // ... requestStop() from a signal handler's watcher ...
///   S.wait();
/// \endcode
class Server {
public:
  explicit Server(ServerOptions Options);
  /// Joins everything (equivalent to requestStop() + wait()).
  ~Server();

  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// Binds listeners and starts the accept/dispatch machinery.  False (with
  /// *Error filled) when no listener could be created; the server is then
  /// inert and wait() returns immediately.
  bool start(std::string *Error);

  /// Initiates a graceful drain: stop accepting, unblock idle connections,
  /// finish queued requests.  Thread-safe and idempotent; returns without
  /// waiting (use wait()).
  void requestStop();

  /// Blocks until the server has fully drained after requestStop().
  void wait();

  /// True between a successful start() and the end of wait().
  bool running() const;

  /// The bound TCP port (resolves an ephemeral request); 0 when TCP is
  /// disabled or start() failed.
  uint16_t tcpPort() const;

  /// The Unix socket path ("" when disabled).
  const std::string &unixPath() const;

  /// Point-in-time statistics (same data a `stats` request returns).
  ServerStats stats() const;

private:
  struct Impl;
  std::unique_ptr<Impl> State;
};

} // namespace layra

#endif // LAYRA_SERVICE_SERVER_H
