//===- service/Client.h - Allocation-service client -------------*- C++ -*-===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A blocking request/response client for the allocation server
/// (service/Server.h), shared by `layra-loadgen`, `layra_alloc_tool
/// --connect`, and the loopback integration tests.  One Client wraps one
/// connection; calls are synchronous and not thread-safe (loadgen gives
/// each worker thread its own Client, which is also how the server's
/// per-connection FIFO ordering stays meaningful).
///
//===----------------------------------------------------------------------===//

#ifndef LAYRA_SERVICE_CLIENT_H
#define LAYRA_SERVICE_CLIENT_H

#include "service/Protocol.h"
#include "support/Socket.h"

#include <cstdint>
#include <string>

namespace layra {

class Client {
public:
  /// Connects over TCP; valid() reports the outcome (*Error filled on
  /// failure).
  static Client connectToTcp(const std::string &Host, uint16_t Port,
                             std::string *Error);
  /// Connects over a Unix-domain socket.
  static Client connectToUnix(const std::string &Path, std::string *Error);
  /// Parses "unix:PATH" or "tcp:HOST:PORT" and connects accordingly --
  /// the spelling command-line tools accept for --connect.
  static Client connectToSpec(const std::string &Spec, std::string *Error);

  Client() = default;
  Client(Client &&) = default;
  Client &operator=(Client &&) = default;

  bool valid() const { return Fd.valid(); }

  /// Sends \p RequestPayload as one frame and reads one response frame
  /// into \p ResponsePayload.  False on any transport failure (*Error
  /// filled); an error *response* from the server is a successful call --
  /// inspect the payload's "schema" field.
  bool call(const std::string &RequestPayload, std::string &ResponsePayload,
            std::string *Error,
            size_t MaxFrameBytes = kDefaultMaxFrameBytes);

  /// `ping` round trip; true when the server answered with a pong.
  bool ping(std::string *Error);

  /// `stats` request; returns false on transport failure.
  bool stats(std::string &ResponsePayload, std::string *Error);

  /// Builds an `allocate` request payload.
  static std::string makeAllocateRequest(const ServiceRequest &Req);
  /// Builds a `submit_ir` request payload.
  static std::string makeSubmitIrRequest(const ServiceRequest &Req);

  /// True when \p ResponsePayload is a server error response (parsed
  /// schema check -- report *content* can never spoof it).  The shared
  /// definition every tool should use to map errors to exit codes.
  static bool isErrorResponse(const std::string &ResponsePayload);

  /// Closes the connection (writes nothing; the server sees EOF).
  void close() { Fd.reset(); }

private:
  explicit Client(SocketFd Fd) : Fd(std::move(Fd)) {}
  SocketFd Fd;
};

} // namespace layra

#endif // LAYRA_SERVICE_CLIENT_H
