//===- service/Client.cpp - Allocation-service client ----------------------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "service/Client.h"

#include <cstdlib>

using namespace layra;

Client Client::connectToTcp(const std::string &Host, uint16_t Port,
                            std::string *Error) {
  return Client(connectTcp(Host, Port, Error));
}

Client Client::connectToUnix(const std::string &Path, std::string *Error) {
  return Client(connectUnix(Path, Error));
}

Client Client::connectToSpec(const std::string &Spec, std::string *Error) {
  if (Spec.compare(0, 5, "unix:") == 0)
    return connectToUnix(Spec.substr(5), Error);
  if (Spec.compare(0, 4, "tcp:") == 0) {
    std::string Rest = Spec.substr(4);
    size_t Colon = Rest.rfind(':');
    if (Colon == std::string::npos || Colon == 0 ||
        Colon + 1 >= Rest.size()) {
      if (Error)
        *Error = "expected tcp:HOST:PORT in '" + Spec + "'";
      return Client();
    }
    char *End = nullptr;
    unsigned long Port = std::strtoul(Rest.c_str() + Colon + 1, &End, 10);
    if (!End || *End || Port == 0 || Port > 65535) {
      if (Error)
        *Error = "invalid port in '" + Spec + "'";
      return Client();
    }
    return connectToTcp(Rest.substr(0, Colon), static_cast<uint16_t>(Port),
                        Error);
  }
  if (Error)
    *Error = "connection spec must start with unix: or tcp: ('" + Spec +
             "')";
  return Client();
}

bool Client::call(const std::string &RequestPayload,
                  std::string &ResponsePayload, std::string *Error,
                  size_t MaxFrameBytes) {
  if (!Fd.valid()) {
    if (Error)
      *Error = "not connected";
    return false;
  }
  if (!writeFrame(Fd.fd(), RequestPayload)) {
    if (Error)
      *Error = "request write failed (server gone?)";
    return false;
  }
  FrameStatus Status = readFrame(Fd.fd(), ResponsePayload, MaxFrameBytes);
  if (Status != FrameStatus::Ok) {
    if (Error)
      *Error = std::string("response read failed: ") +
               frameStatusName(Status);
    return false;
  }
  return true;
}

bool Client::ping(std::string *Error) {
  JsonValue Doc = JsonValue::object();
  Doc.set("type", "ping");
  std::string Response;
  if (!call(Doc.dump(0), Response, Error))
    return false;
  JsonParseResult Parsed = parseJson(Response);
  if (!Parsed.Ok || !Parsed.Value.find("schema") ||
      Parsed.Value.find("schema")->stringValue() != kPongSchema) {
    if (Error)
      *Error = "unexpected ping response";
    return false;
  }
  return true;
}

bool Client::stats(std::string &ResponsePayload, std::string *Error) {
  JsonValue Doc = JsonValue::object();
  Doc.set("type", "stats");
  return call(Doc.dump(0), ResponsePayload, Error);
}

namespace {

/// The fields allocate and submit_ir share.
void appendCommon(JsonValue &Doc, const ServiceRequest &Req) {
  JsonValue Regs = JsonValue::array();
  for (unsigned R : Req.Regs)
    Regs.push(R);
  Doc.set("regs", std::move(Regs));
  if (!Req.ClassRegs.empty()) {
    JsonValue Classes = JsonValue::object();
    for (const ClassRegOverride &O : Req.ClassRegs)
      Classes.set(O.Class, O.Regs);
    Doc.set("class_regs", std::move(Classes));
  }
  Doc.set("target", Req.TargetName);
  JsonValue Options = JsonValue::object();
  Options.set("allocator", Req.Options.AllocatorName);
  Options.set("affinity", Req.Options.AffinityBias);
  Options.set("fold", Req.Options.FoldMemoryOperands);
  Options.set("max_rounds", Req.Options.MaxRounds);
  Doc.set("options", std::move(Options));
  Doc.set("timing", Req.Timing);
  Doc.set("details", Req.Details);
  // Tracing is strictly opt-in on the wire: absent unless requested, so
  // untraced request payloads (and thus response bytes) are unchanged.
  if (Req.Trace)
    Doc.set("trace", Req.TraceId.empty() ? JsonValue(true)
                                         : JsonValue(Req.TraceId));
}

} // namespace

std::string Client::makeAllocateRequest(const ServiceRequest &Req) {
  JsonValue Doc = JsonValue::object();
  Doc.set("type", "allocate");
  if (Req.Suites.size() == 1) {
    Doc.set("suite", Req.Suites.front());
  } else {
    JsonValue Suites = JsonValue::array();
    for (const std::string &S : Req.Suites)
      Suites.push(S);
    Doc.set("suite", std::move(Suites));
  }
  appendCommon(Doc, Req);
  return Doc.dump(0);
}

bool Client::isErrorResponse(const std::string &ResponsePayload) {
  JsonParseResult Parsed = parseJson(ResponsePayload);
  if (!Parsed.Ok)
    return true; // A response the client cannot read is not a success.
  const JsonValue *Schema = Parsed.Value.find("schema");
  return !Schema || Schema->stringValue() == kErrorSchema;
}

std::string Client::makeSubmitIrRequest(const ServiceRequest &Req) {
  JsonValue Doc = JsonValue::object();
  Doc.set("type", "submit_ir");
  Doc.set("ir", Req.IrText);
  if (!Req.Name.empty())
    Doc.set("name", Req.Name);
  // Delta mode: name the retained base this IR is an edit of.  The raw
  // string is preferred when the caller carried one through a parse;
  // otherwise the parsed key is re-rendered.
  if (!Req.Base.empty())
    Doc.set("base", Req.Base);
  else if (Req.BaseKey)
    Doc.set("base", formatBaseKey(Req.BaseKey));
  appendCommon(Doc, Req);
  return Doc.dump(0);
}
