//===- service/Protocol.h - Allocation-service wire protocol ----*- C++ -*-===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The framed wire protocol of the long-running allocation server
/// (docs/PROTOCOL.md is the normative specification, versioned
/// "layra-serve/v1").  Every message -- request or response -- is one
/// frame:
///
///   +------+------+------+------+------+------+------+------+----------+
///   | 'L'  | 'Y'  | 'R'  | 'A'  |  payload length (uint32, BE)  | JSON |
///   +------+------+------+------+------+------+------+------+----------+
///
/// The payload is UTF-8 JSON.  Requests carry a "type" field (ping, stats,
/// allocate, submit_ir); responses identify themselves by "schema"
/// ("layra-serve-pong/v1", "layra-serve-stats/v4", "layra-serve-error/v1",
/// or -- for allocation responses -- a verbatim "layra-driver-report/v1"
/// document, byte-identical to what driver/ReportIO.h would write for a
/// direct BatchDriver run of the same jobs).  Stats schemas are strict
/// supersets of their predecessors: v2 added latency percentile p99, the
/// full service-time histogram, and dispatcher utilization over v1; v3
/// added the rejected-request counter, the per-shard breakdown of the
/// sharded serving core, and disk-cache counters; v4 adds the delta
/// (warm-start) counters and disk_cache.touch_failures (docs/PROTOCOL.md).
///
/// This header carries the pieces both sides share: frame encode/decode
/// over fds and buffers, the parsed request representation, and the small
/// response builders.  Syntax lives here; semantic validation (does the
/// suite exist, is the allocator known) lives in the server, which is where
/// the answers are.
///
//===----------------------------------------------------------------------===//

#ifndef LAYRA_SERVICE_PROTOCOL_H
#define LAYRA_SERVICE_PROTOCOL_H

#include "alloc/Pipeline.h"
#include "support/Json.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace layra {

/// Protocol identity, advertised in stats responses and PROTOCOL.md.
inline constexpr const char *kServeProtocolVersion = "layra-serve/v1";

/// Response schema names.  Allocation responses instead carry the driver
/// report schema ("layra-driver-report/v1", see driver/ReportIO.h).
inline constexpr const char *kErrorSchema = "layra-serve-error/v1";
/// Current stats schema.  v4 is a strict superset of v3 (itself a strict
/// superset of v2/v1): clients keyed on v3 field names keep working, they
/// just see a different schema string plus the new members (the "delta"
/// object and disk_cache.touch_failures).
inline constexpr const char *kStatsSchema = "layra-serve-stats/v4";
/// Historical stats schema names, kept so compatibility notes and tests
/// can refer to them; the server no longer emits any of these.
inline constexpr const char *kStatsSchemaV1 = "layra-serve-stats/v1";
inline constexpr const char *kStatsSchemaV2 = "layra-serve-stats/v2";
inline constexpr const char *kStatsSchemaV3 = "layra-serve-stats/v3";
inline constexpr const char *kPongSchema = "layra-serve-pong/v1";

/// Frame geometry.
inline constexpr char kFrameMagic[4] = {'L', 'Y', 'R', 'A'};
inline constexpr size_t kFrameHeaderBytes = 8;
/// Default cap on one frame's payload.  Submitted IR and detailed reports
/// fit comfortably; a length field of garbage does not get to allocate
/// gigabytes.
inline constexpr size_t kDefaultMaxFrameBytes = 16u << 20;

/// Outcome of reading one frame from a stream.
enum class FrameStatus {
  Ok,        ///< Payload delivered.
  Eof,       ///< Clean close before any header byte.
  Truncated, ///< Stream ended inside a header or payload.
  BadMagic,  ///< Header did not start with "LYRA".
  Oversized, ///< Declared length exceeds the configured bound.
  IoError,   ///< read() failed.
};

/// Human-readable name of \p Status (for error messages and logs).
const char *frameStatusName(FrameStatus Status);

/// Serializes the 8-byte header for a payload of \p PayloadBytes.
std::string encodeFrameHeader(size_t PayloadBytes);

/// Encodes header + \p Payload into one buffer (convenience for tests).
std::string encodeFrame(const std::string &Payload);

/// Decodes a frame header from \p Header (kFrameHeaderBytes bytes).
/// Returns Ok and sets \p PayloadBytes, or BadMagic/Oversized.
FrameStatus decodeFrameHeader(const unsigned char *Header,
                              size_t MaxPayloadBytes, size_t &PayloadBytes);

/// Writes one frame to \p Fd.  False on any write failure.
bool writeFrame(int Fd, const std::string &Payload);

/// Reads one frame from \p Fd into \p Payload.
FrameStatus readFrame(int Fd, std::string &Payload,
                      size_t MaxPayloadBytes = kDefaultMaxFrameBytes);

/// A parsed, syntactically valid request.
struct ServiceRequest {
  enum class Kind { Ping, Stats, Allocate, SubmitIr };
  Kind K = Kind::Ping;

  /// Allocate: suites to run (each crossed with every register count).
  std::vector<std::string> Suites;
  /// Allocate / SubmitIr: register counts; required, each in [1, 1024].
  /// These sweep register class 0; other classes default to the target's
  /// architectural counts.
  std::vector<unsigned> Regs;
  /// Optional "class_regs" object: per-class budget overrides by class
  /// name, e.g. {"vfp": 8}.  Validated against the target's class table
  /// by the server (semantic check).
  std::vector<ClassRegOverride> ClassRegs;
  /// Target cost model name (targetByName in ir/Target.h); default st231.
  std::string TargetName = "st231";
  /// Pipeline configuration (allocator, rounds, folding, affinity).
  PipelineOptions Options;
  /// Include wall-clock fields in the report.  Default off: deterministic
  /// responses are what make the shared cache and the loopback determinism
  /// tests possible, so timing is opt-in.
  bool Timing = false;
  /// Include the per-function task array in the report.
  bool Details = false;

  /// Optional "trace" field (any request kind): `true` or an id string
  /// asks the server to trace the request and echo the trace (with its
  /// id) in the response.  Off by default so response bytes stay
  /// untouched for clients that never opt in — the field is additive
  /// within layra-serve/v1.
  bool Trace = false;
  /// Client-supplied trace id (1..64 chars of [A-Za-z0-9._:-]); empty
  /// means the server generates one.
  std::string TraceId;

  /// SubmitIr: the textual-IR function (ir/Parser.h syntax, strict SSA).
  std::string IrText;
  /// SubmitIr: suite label in the report; default "submitted".
  std::string Name;
  /// SubmitIr: optional "base" field -- the base key (16 lowercase hex
  /// digits, formatBaseKey) of a previously submitted function this IR is
  /// a small edit of.  The server warm-starts the solve from the retained
  /// base; the response stays byte-identical to a from-scratch submit.
  /// Empty = plain submission (which itself registers a base).
  std::string Base;
  /// Parsed form of Base; 0 when absent.
  uint64_t BaseKey = 0;
};

/// Parses \p Payload into \p Out.  On failure returns false and fills
/// \p Error with a message suitable for an error response.  Limits are
/// syntactic sanity bounds (at most 16 suites, 64 register counts); the
/// server applies its own semantic checks on top.  The string_view
/// overload is the event loop's path: frames are parsed in place out of
/// the per-connection read buffer without an intermediate copy.
bool parseServiceRequest(std::string_view Payload, ServiceRequest &Out,
                         std::string &Error);

/// The base key of a submitted function: a SplitMix64-style fold of the
/// IR text bytes (exact algorithm in docs/PROTOCOL.md, so clients can
/// compute it without a round trip).  Never returns 0 -- 0 is the
/// driver's "no base" sentinel.  This key names the base a plain
/// submit_ir registers and the "base" field of a delta resubmission.
uint64_t submitIrBaseKey(const std::string &IrText);

/// Renders \p Key as the wire form: exactly 16 lowercase hex digits.
std::string formatBaseKey(uint64_t Key);

/// Parses the wire form back; false unless \p Text is exactly 16
/// lowercase hex digits encoding a nonzero key.
bool parseBaseKey(const std::string &Text, uint64_t &Key);

/// Content hash a request for shard routing.  Mixes every field that
/// influences the response bytes (suites, register counts, class
/// overrides, target, pipeline options, submitted IR, report knobs) with
/// the same SplitMix64 mixer the solver caches use, so requests for the
/// same work deterministically land on the same shard -- and therefore
/// the same per-shard cache -- across connections and restarts.  Trace
/// fields are deliberately excluded: tracing must not change routing.
///
/// submit_ir requests route purely by their effective base key (the
/// "base" field when present, else submitIrBaseKey of the IR text): a
/// base and every delta against it must land on the same shard, because
/// the base registry is per-shard state.  Register counts and options
/// deliberately do not spread a function's resubmissions across shards.
uint64_t routeRequestHash(const ServiceRequest &Req);

/// Builds the payload of an error response.  A non-empty \p TraceId adds
/// a {"trace": {"id": ...}} echo for clients that asked to be traced.
std::string makeErrorResponse(const std::string &Message,
                              const std::string &TraceId = std::string());

/// Builds the payload of a pong response, with the same optional trace
/// echo as makeErrorResponse.
std::string makePongResponse(const std::string &TraceId = std::string());

} // namespace layra

#endif // LAYRA_SERVICE_PROTOCOL_H
