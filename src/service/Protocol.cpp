//===- service/Protocol.cpp - Allocation-service wire protocol -------------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "service/Protocol.h"

#include "obs/RequestTrace.h"
#include "support/Socket.h"

#include <cstdio>
#include <cstring>

using namespace layra;

const char *layra::frameStatusName(FrameStatus Status) {
  switch (Status) {
  case FrameStatus::Ok:
    return "ok";
  case FrameStatus::Eof:
    return "eof";
  case FrameStatus::Truncated:
    return "truncated frame";
  case FrameStatus::BadMagic:
    return "bad frame magic";
  case FrameStatus::Oversized:
    return "oversized frame";
  case FrameStatus::IoError:
    return "i/o error";
  }
  return "unknown";
}

std::string layra::encodeFrameHeader(size_t PayloadBytes) {
  std::string Header(kFrameHeaderBytes, '\0');
  std::memcpy(&Header[0], kFrameMagic, sizeof(kFrameMagic));
  uint32_t Length = static_cast<uint32_t>(PayloadBytes);
  Header[4] = static_cast<char>((Length >> 24) & 0xFF);
  Header[5] = static_cast<char>((Length >> 16) & 0xFF);
  Header[6] = static_cast<char>((Length >> 8) & 0xFF);
  Header[7] = static_cast<char>(Length & 0xFF);
  return Header;
}

std::string layra::encodeFrame(const std::string &Payload) {
  return encodeFrameHeader(Payload.size()) + Payload;
}

FrameStatus layra::decodeFrameHeader(const unsigned char *Header,
                                     size_t MaxPayloadBytes,
                                     size_t &PayloadBytes) {
  if (std::memcmp(Header, kFrameMagic, sizeof(kFrameMagic)) != 0)
    return FrameStatus::BadMagic;
  uint32_t Length = (static_cast<uint32_t>(Header[4]) << 24) |
                    (static_cast<uint32_t>(Header[5]) << 16) |
                    (static_cast<uint32_t>(Header[6]) << 8) |
                    static_cast<uint32_t>(Header[7]);
  if (Length > MaxPayloadBytes)
    return FrameStatus::Oversized;
  PayloadBytes = Length;
  return FrameStatus::Ok;
}

bool layra::writeFrame(int Fd, const std::string &Payload) {
  // The length field is 32 bits; a payload beyond it would silently wrap
  // in encodeFrameHeader and desynchronize the stream.  Refuse instead.
  if (Payload.size() > 0xFFFFFFFFu)
    return false;
  // One buffer, one send loop: header and payload arrive back-to-back.
  std::string Frame = encodeFrame(Payload);
  return sendAll(Fd, Frame.data(), Frame.size());
}

FrameStatus layra::readFrame(int Fd, std::string &Payload,
                             size_t MaxPayloadBytes) {
  unsigned char Header[kFrameHeaderBytes];
  ssize_t Got = recvFull(Fd, Header, sizeof(Header));
  if (Got < 0)
    return FrameStatus::IoError;
  if (Got == 0)
    return FrameStatus::Eof;
  if (static_cast<size_t>(Got) < sizeof(Header))
    return FrameStatus::Truncated;
  size_t PayloadBytes = 0;
  FrameStatus HeaderStatus =
      decodeFrameHeader(Header, MaxPayloadBytes, PayloadBytes);
  if (HeaderStatus != FrameStatus::Ok)
    return HeaderStatus;
  Payload.resize(PayloadBytes);
  if (PayloadBytes > 0) {
    ssize_t Body = recvFull(Fd, &Payload[0], PayloadBytes);
    if (Body < 0)
      return FrameStatus::IoError;
    if (static_cast<size_t>(Body) < PayloadBytes)
      return FrameStatus::Truncated;
  }
  return FrameStatus::Ok;
}

//===----------------------------------------------------------------------===//
// Requests
//===----------------------------------------------------------------------===//

namespace {

/// Syntactic sanity bounds; semantic limits (queue, cache) live server-side.
constexpr size_t kMaxSuites = 16;
constexpr size_t kMaxRegCounts = 64;
constexpr unsigned kMaxRegValue = 1024;
constexpr unsigned kMaxRounds = 1024;

bool readBool(const JsonValue &Obj, const char *Key, bool &Out,
              std::string &Error) {
  const JsonValue *V = Obj.find(Key);
  if (!V)
    return true;
  if (!V->isBool()) {
    Error = std::string("field '") + Key + "' must be a boolean";
    return false;
  }
  Out = V->boolValue();
  return true;
}

bool readString(const JsonValue &Obj, const char *Key, std::string &Out,
                std::string &Error) {
  const JsonValue *V = Obj.find(Key);
  if (!V)
    return true;
  if (!V->isString()) {
    Error = std::string("field '") + Key + "' must be a string";
    return false;
  }
  Out = V->stringValue();
  return true;
}

/// Reads "regs": either one integer or an array of integers, each in
/// [1, kMaxRegValue].
bool readRegs(const JsonValue &Obj, std::vector<unsigned> &Out,
              std::string &Error) {
  const JsonValue *V = Obj.find("regs");
  if (!V) {
    Error = "field 'regs' is required";
    return false;
  }
  auto ReadOne = [&](const JsonValue &E) {
    long long R = E.isInt() ? E.intValue() : -1;
    if (R < 1 || R > static_cast<long long>(kMaxRegValue)) {
      Error = "'regs' entries must be integers in [1, " +
              std::to_string(kMaxRegValue) + "]";
      return false;
    }
    Out.push_back(static_cast<unsigned>(R));
    return true;
  };
  if (V->isInt())
    return ReadOne(*V);
  if (!V->isArray() || V->size() == 0) {
    Error = "'regs' must be an integer or a non-empty array of integers";
    return false;
  }
  if (V->size() > kMaxRegCounts) {
    Error = "'regs' lists at most " + std::to_string(kMaxRegCounts) +
            " register counts";
    return false;
  }
  for (const JsonValue &E : V->elements())
    if (!ReadOne(E))
      return false;
  return true;
}

/// Reads the optional "class_regs" object: class name -> budget override,
/// e.g. {"vfp": 8}.  Names are validated semantically by the server
/// against the request's target.
bool readClassRegs(const JsonValue &Obj,
                   std::vector<ClassRegOverride> &Out, std::string &Error) {
  const JsonValue *V = Obj.find("class_regs");
  if (!V)
    return true;
  if (!V->isObject() || V->size() == 0 || V->size() > kMaxRegClasses) {
    Error = "'class_regs' must be an object of 1.." +
            std::to_string(kMaxRegClasses) + " NAME: N entries";
    return false;
  }
  for (const auto &[Name, E] : V->members()) {
    long long R = E.isInt() ? E.intValue() : -1;
    if (Name.empty() || R < 1 ||
        R > static_cast<long long>(kMaxRegValue)) {
      Error = "'class_regs' entries must map a class name to an integer "
              "in [1, " +
              std::to_string(kMaxRegValue) + "]";
      return false;
    }
    Out.push_back({Name, static_cast<unsigned>(R)});
  }
  return true;
}

bool readOptions(const JsonValue &Obj, PipelineOptions &Out,
                 std::string &Error) {
  const JsonValue *V = Obj.find("options");
  if (!V)
    return true;
  if (!V->isObject()) {
    Error = "field 'options' must be an object";
    return false;
  }
  if (!readString(*V, "allocator", Out.AllocatorName, Error) ||
      !readBool(*V, "affinity", Out.AffinityBias, Error) ||
      !readBool(*V, "fold", Out.FoldMemoryOperands, Error))
    return false;
  if (const JsonValue *Rounds = V->find("max_rounds")) {
    long long R = Rounds->isInt() ? Rounds->intValue() : -1;
    if (R < 1 || R > static_cast<long long>(kMaxRounds)) {
      Error = "'options.max_rounds' must be an integer in [1, " +
              std::to_string(kMaxRounds) + "]";
      return false;
    }
    Out.MaxRounds = static_cast<unsigned>(R);
  }
  return true;
}

} // namespace

bool layra::parseServiceRequest(std::string_view Payload,
                                ServiceRequest &Out, std::string &Error) {
  JsonParseResult Parsed = parseJson(Payload);
  if (!Parsed.Ok) {
    Error = "malformed JSON at line " + std::to_string(Parsed.Line) +
            ", column " + std::to_string(Parsed.Column) + ": " + Parsed.Error;
    return false;
  }
  const JsonValue &Doc = Parsed.Value;
  if (!Doc.isObject()) {
    Error = "request must be a JSON object";
    return false;
  }
  const JsonValue *Type = Doc.find("type");
  if (!Type || !Type->isString()) {
    Error = "request needs a string 'type' field";
    return false;
  }
  const std::string &Kind = Type->stringValue();

  Out = ServiceRequest();
  // Tracing is orthogonal to the request kind, so it parses before the
  // kind branches (ping/stats return early below).
  if (const JsonValue *TraceField = Doc.find("trace")) {
    if (TraceField->isBool()) {
      Out.Trace = TraceField->boolValue();
    } else if (TraceField->isString()) {
      if (!obs::isValidTraceId(TraceField->stringValue())) {
        Error = "'trace' id must be 1..64 characters of [A-Za-z0-9._:-]";
        return false;
      }
      Out.Trace = true;
      Out.TraceId = TraceField->stringValue();
    } else {
      Error = "field 'trace' must be a boolean or an id string";
      return false;
    }
  }
  if (Kind == "ping") {
    Out.K = ServiceRequest::Kind::Ping;
    return true;
  }
  if (Kind == "stats") {
    Out.K = ServiceRequest::Kind::Stats;
    return true;
  }

  if (Kind == "allocate") {
    Out.K = ServiceRequest::Kind::Allocate;
    const JsonValue *SuiteField = Doc.find("suite");
    if (!SuiteField) {
      Error = "allocate requests need a 'suite' field";
      return false;
    }
    if (SuiteField->isString()) {
      Out.Suites.push_back(SuiteField->stringValue());
    } else if (SuiteField->isArray() && SuiteField->size() > 0 &&
               SuiteField->size() <= kMaxSuites) {
      for (const JsonValue &E : SuiteField->elements()) {
        if (!E.isString()) {
          Error = "'suite' array entries must be strings";
          return false;
        }
        Out.Suites.push_back(E.stringValue());
      }
    } else {
      Error = "'suite' must be a string or an array of 1.." +
              std::to_string(kMaxSuites) + " strings";
      return false;
    }
  } else if (Kind == "submit_ir") {
    Out.K = ServiceRequest::Kind::SubmitIr;
    const JsonValue *Ir = Doc.find("ir");
    if (!Ir || !Ir->isString() || Ir->stringValue().empty()) {
      Error = "submit_ir requests need a non-empty string 'ir' field";
      return false;
    }
    Out.IrText = Ir->stringValue();
    if (!readString(Doc, "name", Out.Name, Error))
      return false;
    if (const JsonValue *Base = Doc.find("base")) {
      if (!Base->isString() ||
          !parseBaseKey(Base->stringValue(), Out.BaseKey)) {
        Error = "'base' must be a base key: exactly 16 lowercase hex "
                "digits (see docs/PROTOCOL.md, submit_ir delta mode)";
        return false;
      }
      Out.Base = Base->stringValue();
    }
  } else {
    Error = "unknown request type '" + Kind + "'";
    return false;
  }

  // Shared allocate / submit_ir tail.
  if (!readRegs(Doc, Out.Regs, Error) ||
      !readClassRegs(Doc, Out.ClassRegs, Error) ||
      !readString(Doc, "target", Out.TargetName, Error) ||
      !readOptions(Doc, Out.Options, Error) ||
      !readBool(Doc, "timing", Out.Timing, Error) ||
      !readBool(Doc, "details", Out.Details, Error))
    return false;
  return true;
}

//===----------------------------------------------------------------------===//
// Shard routing
//===----------------------------------------------------------------------===//

namespace {

/// SplitMix64-style mixing, the same scheme the solver caches hash with
/// (driver/BatchDriver.cpp): cheap, stable across runs, and good enough
/// dispersion that `hash % shards` balances real request mixes.
uint64_t routeMix(uint64_t H, uint64_t Value) {
  H ^= Value + 0x9e3779b97f4a7c15ULL + (H << 6) + (H >> 2);
  H = (H ^ (H >> 30)) * 0xbf58476d1ce4e5b9ULL;
  return H ^ (H >> 27);
}

uint64_t routeMixString(uint64_t H, const std::string &S) {
  H = routeMix(H, S.size());
  for (unsigned char C : S)
    H = routeMix(H, C);
  return H;
}

} // namespace

uint64_t layra::submitIrBaseKey(const std::string &IrText) {
  // Documented, client-computable fold of the IR text (docs/PROTOCOL.md
  // spells out the mixer): the key under which a plain submit_ir
  // registers its base, and the routing key of every delta against it.
  uint64_t H = 0x6c79726162617365ULL; // "lyrabase"
  H = routeMix(H, IrText.size());
  for (unsigned char C : IrText)
    H = routeMix(H, C);
  // 0 is the driver's "no base" sentinel; remap the (2^-64) collision.
  return H ? H : 0x6c79726162617365ULL;
}

std::string layra::formatBaseKey(uint64_t Key) {
  char Buf[17];
  std::snprintf(Buf, sizeof(Buf), "%016llx",
                static_cast<unsigned long long>(Key));
  return std::string(Buf, 16);
}

bool layra::parseBaseKey(const std::string &Text, uint64_t &Key) {
  if (Text.size() != 16)
    return false;
  uint64_t Parsed = 0;
  for (char C : Text) {
    unsigned Digit;
    if (C >= '0' && C <= '9')
      Digit = static_cast<unsigned>(C - '0');
    else if (C >= 'a' && C <= 'f')
      Digit = static_cast<unsigned>(C - 'a') + 10;
    else
      return false; // Uppercase and prefixes are rejected: one wire form.
    Parsed = (Parsed << 4) | Digit;
  }
  if (Parsed == 0)
    return false;
  Key = Parsed;
  return true;
}

uint64_t layra::routeRequestHash(const ServiceRequest &Req) {
  uint64_t H = 0x6c617972612d7368ULL; // "layra-sh"
  H = routeMix(H, static_cast<uint64_t>(Req.K));
  // submit_ir routes purely by effective base key: a base and all its
  // deltas must share a shard (the base registry is per-shard state), no
  // matter what register counts or options each resubmission carries.
  if (Req.K == ServiceRequest::Kind::SubmitIr)
    return routeMix(H, Req.BaseKey ? Req.BaseKey
                                   : submitIrBaseKey(Req.IrText));
  for (const std::string &Suite : Req.Suites)
    H = routeMixString(H, Suite);
  for (unsigned R : Req.Regs)
    H = routeMix(H, R);
  for (const ClassRegOverride &O : Req.ClassRegs) {
    H = routeMixString(H, O.Class);
    H = routeMix(H, O.Regs);
  }
  H = routeMixString(H, Req.TargetName);
  H = routeMixString(H, Req.Options.AllocatorName);
  H = routeMix(H, Req.Options.MaxRounds);
  H = routeMix(H, (Req.Options.AffinityBias ? 1u : 0u) |
                      (Req.Options.FoldMemoryOperands ? 2u : 0u) |
                      (Req.Timing ? 4u : 0u) | (Req.Details ? 8u : 0u));
  H = routeMixString(H, Req.IrText);
  H = routeMixString(H, Req.Name);
  return H;
}

//===----------------------------------------------------------------------===//
// Responses
//===----------------------------------------------------------------------===//

namespace {

/// Appends the minimal trace echo shared by pong/error (and stats)
/// responses.  New keys land at the end of the object, so traced and
/// untraced payloads differ only by this trailing member.
void appendTraceEcho(JsonValue &Doc, const std::string &TraceId) {
  if (TraceId.empty())
    return;
  JsonValue TraceDoc = JsonValue::object();
  TraceDoc.set("id", TraceId);
  Doc.set("trace", std::move(TraceDoc));
}

} // namespace

std::string layra::makeErrorResponse(const std::string &Message,
                                     const std::string &TraceId) {
  JsonValue Doc = JsonValue::object();
  Doc.set("schema", kErrorSchema);
  Doc.set("error", Message);
  appendTraceEcho(Doc, TraceId);
  return Doc.dump(2) + "\n";
}

std::string layra::makePongResponse(const std::string &TraceId) {
  JsonValue Doc = JsonValue::object();
  Doc.set("schema", kPongSchema);
  Doc.set("protocol", kServeProtocolVersion);
  appendTraceEcho(Doc, TraceId);
  return Doc.dump(2) + "\n";
}
