//===- service/DiskCache.cpp - Persistent on-disk outcome store ------------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "service/DiskCache.h"

#include "obs/EventLog.h"
#include "service/Protocol.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <vector>

using namespace layra;

namespace {

/// Entry format identity.  kFormatVersion bumps when the layout below
/// changes; the revision hash (header) additionally keys on the protocol
/// and solver revisions so entries from an older build read as misses.
constexpr char kEntryMagic[4] = {'L', 'Y', 'R', 'D'};
constexpr uint32_t kFormatVersion = 1;
/// Bump when the solver's outcome semantics change: any alteration to
/// what TaskOutcome fields mean for a given key invalidates every
/// persisted entry.
constexpr const char *kSolverRevision = "layra-solver/2026-08";

// Header:  magic(4) version(4) revision(8) key(8)
// Payload: spill_cost(8,i64) loads(4) stores(4) folded(4) rounds(4)
//          max_live(4) fits(1)
constexpr size_t kHeaderBytes = 4 + 4 + 8 + 8;
constexpr size_t kPayloadBytes = 8 + 4 + 4 + 4 + 4 + 4 + 1;
constexpr size_t kEntryBytes = kHeaderBytes + kPayloadBytes;

// Fixed little-endian integer codecs: the cache directory may be shared
// or archived, so the layout must not depend on host byte order.
void putU32(std::string &Buf, uint32_t V) {
  for (int I = 0; I < 4; ++I)
    Buf.push_back(static_cast<char>((V >> (8 * I)) & 0xFF));
}

void putU64(std::string &Buf, uint64_t V) {
  for (int I = 0; I < 8; ++I)
    Buf.push_back(static_cast<char>((V >> (8 * I)) & 0xFF));
}

uint32_t getU32(const unsigned char *P) {
  uint32_t V = 0;
  for (int I = 0; I < 4; ++I)
    V |= static_cast<uint32_t>(P[I]) << (8 * I);
  return V;
}

uint64_t getU64(const unsigned char *P) {
  uint64_t V = 0;
  for (int I = 0; I < 8; ++I)
    V |= static_cast<uint64_t>(P[I]) << (8 * I);
  return V;
}

uint64_t mixRevision(uint64_t H, const char *S) {
  for (; *S; ++S) {
    H ^= static_cast<unsigned char>(*S) + 0x9e3779b97f4a7c15ULL + (H << 6) +
         (H >> 2);
    H = (H ^ (H >> 30)) * 0xbf58476d1ce4e5b9ULL;
    H ^= H >> 27;
  }
  return H;
}

std::string keyFileName(uint64_t Key) {
  char Buf[17];
  std::snprintf(Buf, sizeof Buf, "%016llx",
                static_cast<unsigned long long>(Key));
  return std::string(Buf);
}

/// True when \p Name is exactly 16 lowercase-hex digits; fills \p Key.
bool parseKeyFileName(const char *Name, uint64_t &Key) {
  uint64_t V = 0;
  int Len = 0;
  for (; Name[Len]; ++Len) {
    char C = Name[Len];
    unsigned Digit;
    if (C >= '0' && C <= '9')
      Digit = static_cast<unsigned>(C - '0');
    else if (C >= 'a' && C <= 'f')
      Digit = static_cast<unsigned>(C - 'a') + 10;
    else
      return false;
    if (Len >= 16)
      return false;
    V = (V << 4) | Digit;
  }
  if (Len != 16)
    return false;
  Key = V;
  return true;
}

bool ensureDir(const std::string &Path) {
  if (::mkdir(Path.c_str(), 0777) == 0 || errno == EEXIST) {
    struct stat Sb;
    return ::stat(Path.c_str(), &Sb) == 0 && S_ISDIR(Sb.st_mode);
  }
  return false;
}

} // namespace

uint64_t DiskCache::revisionHash() {
  uint64_t H = 0x6c797264ULL; // "lyrd"
  H = mixRevision(H, kServeProtocolVersion);
  H = mixRevision(H, kSolverRevision);
  return H;
}

size_t DiskCache::entryBytes() { return kEntryBytes; }

DiskCache::DiskCache(std::string Dir, uint64_t Cap)
    : Root(std::move(Dir)), CapBytes(Cap) {
  if (Root.empty()) {
    InitError = "disk cache directory must not be empty";
    return;
  }
  while (Root.size() > 1 && Root.back() == '/')
    Root.pop_back();
  if (!ensureDir(Root)) {
    InitError = "cannot create disk cache directory " + Root + ": " +
                std::strerror(errno);
    return;
  }
  Valid = true;
  indexExisting();
  // An inherited cache may already exceed a newly configured (or newly
  // shrunk) cap; trim before serving so the bound holds from the start.
  std::lock_guard<std::mutex> Lock(Mutex);
  evictOverCapLocked();
}

std::string DiskCache::entryPath(uint64_t Key) const {
  std::string Name = keyFileName(Key);
  return Root + "/" + Name.substr(0, 2) + "/" + Name;
}

void DiskCache::indexExisting() {
  struct Found {
    uint64_t Key;
    uint64_t Bytes;
    time_t MtimeSec;
    long MtimeNsec;
  };
  std::vector<Found> All;
  DIR *TopDir = ::opendir(Root.c_str());
  if (!TopDir)
    return;
  while (dirent *Sub = ::readdir(TopDir)) {
    if (Sub->d_name[0] == '.')
      continue;
    std::string SubPath = Root + "/" + Sub->d_name;
    DIR *Fan = ::opendir(SubPath.c_str());
    if (!Fan)
      continue; // Stray regular file; not ours to touch.
    while (dirent *E = ::readdir(Fan)) {
      uint64_t Key;
      if (!parseKeyFileName(E->d_name, Key))
        continue; // Leftover .tmp.<pid> scratch or foreign file.
      struct stat Sb;
      std::string Path = SubPath + "/" + E->d_name;
      if (::stat(Path.c_str(), &Sb) != 0 || !S_ISREG(Sb.st_mode))
        continue;
      All.push_back({Key, static_cast<uint64_t>(Sb.st_size), Sb.st_mtime,
                     Sb.st_mtim.tv_nsec});
    }
    ::closedir(Fan);
  }
  ::closedir(TopDir);
  // Most recently touched first; ties broken by key so the order -- and
  // therefore eviction -- is stable across scans.
  std::sort(All.begin(), All.end(), [](const Found &A, const Found &B) {
    if (A.MtimeSec != B.MtimeSec)
      return A.MtimeSec > B.MtimeSec;
    if (A.MtimeNsec != B.MtimeNsec)
      return A.MtimeNsec > B.MtimeNsec;
    return A.Key < B.Key;
  });
  std::lock_guard<std::mutex> Lock(Mutex);
  for (const Found &F : All) {
    Recency.push_back({F.Key, F.Bytes});
    Index.emplace(F.Key, std::prev(Recency.end()));
    TotalBytes += F.Bytes;
  }
}

void DiskCache::removeEntryLocked(uint64_t Key, bool CountEviction) {
  auto It = Index.find(Key);
  if (It == Index.end())
    return;
  TotalBytes -= It->second->Bytes;
  Recency.erase(It->second);
  Index.erase(It);
  ::remove(entryPath(Key).c_str());
  if (CountEviction)
    ++Evictions;
}

void DiskCache::evictOverCapLocked() {
  if (CapBytes == 0)
    return;
  // Keep at least the newest entry even under a cap smaller than one
  // entry: a cache that evicts what it just wrote stores nothing ever.
  while (TotalBytes > CapBytes && Recency.size() > 1)
    removeEntryLocked(Recency.back().Key, /*CountEviction=*/true);
}

bool DiskCache::lookup(uint64_t Key, TaskOutcome &Out) {
  if (!Valid)
    return false;
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Index.find(Key);
  if (It == Index.end()) {
    ++Misses;
    return false;
  }
  std::string Path = entryPath(Key);
  unsigned char Buf[kEntryBytes];
  std::FILE *In = std::fopen(Path.c_str(), "rb");
  bool Ok = In != nullptr;
  size_t Got = 0;
  if (Ok) {
    Got = std::fread(Buf, 1, sizeof Buf, In);
    // A trailing byte would mean a format change; reject oversize too.
    Ok = Got == kEntryBytes && std::fgetc(In) == EOF;
    std::fclose(In);
  }
  if (Ok)
    Ok = std::memcmp(Buf, kEntryMagic, sizeof kEntryMagic) == 0 &&
         getU32(Buf + 4) == kFormatVersion &&
         getU64(Buf + 8) == revisionHash() && getU64(Buf + 16) == Key;
  if (!Ok) {
    // Truncated, corrupted, or written by another revision: useless, so
    // delete it and report a miss -- the driver re-solves and re-stores.
    removeEntryLocked(Key, /*CountEviction=*/false);
    ++Misses;
    return false;
  }
  const unsigned char *P = Buf + kHeaderBytes;
  Out.SpillCost = static_cast<Weight>(static_cast<int64_t>(getU64(P)));
  Out.NumLoads = getU32(P + 8);
  Out.NumStores = getU32(P + 12);
  Out.LoadsFolded = getU32(P + 16);
  Out.Rounds = getU32(P + 20);
  Out.FinalMaxLive = getU32(P + 24);
  Out.Fits = P[28] != 0;
  ++Hits;
  // Touch: recency must survive restarts, and mtime is the persisted
  // order the startup scan rebuilds from.  A failed touch still serves
  // the entry -- only the persisted LRU order degrades -- but silently
  // eating the failure hid real trouble (read-only remount, deleted
  // file), so it is counted, surfaced in stats, and logged once.
  bool Touched = TouchHook
                     ? TouchHook(Path.c_str())
                     : ::utimensat(AT_FDCWD, Path.c_str(), nullptr, 0) == 0;
  if (!Touched) {
    if (TouchFailures == 0)
      std::fprintf(stderr,
                   "layra-serve: disk-cache recency touch failed for %s "
                   "(LRU order will not survive a restart; further "
                   "failures counted in disk_cache.touch_failures)\n",
                   Path.c_str());
    ++TouchFailures;
  }
  Recency.splice(Recency.begin(), Recency, It->second);
  return true;
}

void DiskCache::store(uint64_t Key, const TaskOutcome &Out) {
  if (!Valid)
    return;
  std::lock_guard<std::mutex> Lock(Mutex);
  if (Index.count(Key))
    return; // Outcomes are pure functions of the key; nothing to update.
  std::string Blob;
  Blob.reserve(kEntryBytes);
  Blob.append(kEntryMagic, sizeof kEntryMagic);
  putU32(Blob, kFormatVersion);
  putU64(Blob, revisionHash());
  putU64(Blob, Key);
  putU64(Blob, static_cast<uint64_t>(static_cast<int64_t>(Out.SpillCost)));
  putU32(Blob, Out.NumLoads);
  putU32(Blob, Out.NumStores);
  putU32(Blob, Out.LoadsFolded);
  putU32(Blob, Out.Rounds);
  putU32(Blob, Out.FinalMaxLive);
  Blob.push_back(Out.Fits ? '\1' : '\0');
  std::string Name = keyFileName(Key);
  if (!ensureDir(Root + "/" + Name.substr(0, 2)))
    return; // Degraded disk: skip persisting, the memory cache still has it.
  if (!obs::writeFileAtomically(entryPath(Key), Blob, nullptr))
    return;
  Recency.push_front({Key, Blob.size()});
  Index.emplace(Key, Recency.begin());
  TotalBytes += Blob.size();
  ++Writes;
  evictOverCapLocked();
}

DiskCacheStats DiskCache::stats() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  DiskCacheStats S;
  S.Hits = Hits;
  S.Misses = Misses;
  S.Writes = Writes;
  S.Evictions = Evictions;
  S.Entries = Index.size();
  S.Bytes = TotalBytes;
  S.TouchFailures = TouchFailures;
  return S;
}
