//===- service/DiskCache.h - Persistent on-disk outcome store ---*- C++ -*-===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A content-addressed on-disk TaskOutcomeStore: one small binary file per
/// pipeline-cache key, laid out as `DIR/<2-hex>/<16-hex-key>` (the two-hex
/// fan-out keeps any one directory small).  Sitting underneath the
/// per-shard in-memory LRUs it gives the allocation server -- and
/// `layra-bench --disk-cache` -- warm starts across process restarts:
/// a key the memory caches never saw is still one 53-byte read away.
///
/// Every entry carries a versioned header (magic, format version, a
/// revision hash keyed on the wire-protocol version and the solver
/// revision, and the entry's own key).  Any mismatch -- truncation,
/// corruption, an entry written by a different solver revision -- reads
/// as a miss and deletes the file, so the driver transparently re-solves
/// and re-stores.  Combined with atomic writes (obs::writeFileAtomically:
/// temp file + rename) a crashed or concurrent writer can never leave a
/// half-entry that parses.
///
/// Capacity is a byte bound with LRU eviction: recency is tracked
/// in-memory and persisted through file mtimes (hits touch the file), so
/// the least-recently-used entry survives restarts too.
///
//===----------------------------------------------------------------------===//

#ifndef LAYRA_SERVICE_DISKCACHE_H
#define LAYRA_SERVICE_DISKCACHE_H

#include "driver/BatchDriver.h"

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>

namespace layra {

/// Lifetime counters of one DiskCache.  Surfaced as the `disk_cache`
/// object of stats v4 and the `layra.serve.disk.*` metrics.
struct DiskCacheStats {
  uint64_t Hits = 0;      ///< lookup() served from disk.
  uint64_t Misses = 0;    ///< lookup() found nothing usable.
  uint64_t Writes = 0;    ///< Entries persisted.
  uint64_t Evictions = 0; ///< Entries removed by the byte cap.
  uint64_t Entries = 0;   ///< Entries currently on disk.
  uint64_t Bytes = 0;     ///< Total payload bytes currently on disk.
  /// Hits whose recency touch (mtime update) failed.  The entry was
  /// still served; only the *persisted* LRU order degrades -- after a
  /// restart the startup scan will see a stale mtime and may evict the
  /// entry earlier than true recency warrants.
  uint64_t TouchFailures = 0;
};

class DiskCache : public TaskOutcomeStore {
public:
  /// Opens (creating if needed) the cache rooted at \p Dir.  \p CapBytes
  /// bounds the total size, 0 = unbounded.  Existing entries are indexed
  /// by scanning the fan-out directories once, ordered by mtime so LRU
  /// eviction picks up where the previous process left off.  On failure
  /// valid() is false and every operation is a no-op miss, so an
  /// unwritable directory degrades to "no disk cache" rather than
  /// killing the server.
  explicit DiskCache(std::string Dir, uint64_t CapBytes = 0);

  bool valid() const { return Valid; }
  const std::string &error() const { return InitError; }
  const std::string &directory() const { return Root; }

  // TaskOutcomeStore: both entry points are safe to call from multiple
  // shard drivers concurrently (internal mutex).
  bool lookup(uint64_t Key, TaskOutcome &Out) override;
  void store(uint64_t Key, const TaskOutcome &Out) override;

  DiskCacheStats stats() const;

  /// The revision hash every entry header embeds; mixes the wire-protocol
  /// version with the solver revision tag.  Exposed so tests can forge a
  /// mismatched header without chasing magic offsets.
  static uint64_t revisionHash();
  /// Exact on-disk size of one entry (header + payload), for tests that
  /// size a deliberately tiny --disk-cache-cap.
  static size_t entryBytes();

  /// Test seam: replaces the recency-touch syscall (utimensat) for this
  /// cache.  Production code never calls this; tests inject a failing
  /// hook because a root test process cannot provoke a real utimensat
  /// failure with permissions.  Call before concurrent use.
  void setTouchHookForTest(bool (*Hook)(const char *Path)) {
    TouchHook = Hook;
  }

private:
  struct Entry {
    uint64_t Key = 0;
    uint64_t Bytes = 0;
  };

  std::string entryPath(uint64_t Key) const;
  void removeEntryLocked(uint64_t Key, bool CountEviction);
  void evictOverCapLocked();
  void indexExisting();

  std::string Root;
  uint64_t CapBytes = 0;
  bool Valid = false;
  std::string InitError;

  mutable std::mutex Mutex;
  /// Front = most recently used.  The map points into the list.
  std::list<Entry> Recency;
  std::unordered_map<uint64_t, std::list<Entry>::iterator> Index;
  uint64_t TotalBytes = 0;
  uint64_t Hits = 0, Misses = 0, Writes = 0, Evictions = 0;
  uint64_t TouchFailures = 0;
  /// Non-null in tests only (setTouchHookForTest).
  bool (*TouchHook)(const char *Path) = nullptr;
};

} // namespace layra

#endif // LAYRA_SERVICE_DISKCACHE_H
