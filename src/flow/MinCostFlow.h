//===- flow/MinCostFlow.h - Min-cost max-flow --------------------*- C++ -*-===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A successive-shortest-paths min-cost max-flow solver (Dijkstra with
/// Johnson potentials).  Layra uses it for the provably optimal
/// spill-everywhere allocator on *interval* instances: choosing a
/// maximum-weight R-colorable set of intervals is a classical min-cost-flow
/// problem, which cross-checks the branch-and-bound "Optimal" baseline.
///
//===----------------------------------------------------------------------===//

#ifndef LAYRA_FLOW_MINCOSTFLOW_H
#define LAYRA_FLOW_MINCOSTFLOW_H

#include <cstdint>
#include <vector>

namespace layra {

class SolverWorkspace;

/// Min-cost max-flow network on dense node ids.
class MinCostFlow {
public:
  using NodeId = unsigned;
  using FlowAmount = long long;
  using Cost = long long;

  explicit MinCostFlow(unsigned NumNodes) : FirstArc(NumNodes, kNoArc) {}

  /// Adds a directed arc and its residual twin; returns the arc id, with
  /// which the caller can query flowOn() after solving.
  /// \pre Capacity >= 0.  Negative costs are allowed as long as the graph
  /// has no negative cycle (our constructions are DAGs).
  unsigned addArc(NodeId From, NodeId To, FlowAmount Capacity, Cost ArcCost);

  /// Result of a run.
  struct Result {
    FlowAmount Flow = 0;
    Cost TotalCost = 0;
  };

  /// Sends up to \p MaxFlow units from \p Source to \p Sink along
  /// successively cheapest paths, stopping early when the sink becomes
  /// unreachable.  With negative arc costs present, the first potentials are
  /// initialised by Bellman-Ford; later iterations use Dijkstra.
  ///
  /// \p WS optionally supplies the shortest-path scratch (potentials,
  /// distances, predecessor arcs and the Dijkstra heap) so repeated solves
  /// reuse warm buffers; results are identical either way.
  Result run(NodeId Source, NodeId Sink, FlowAmount MaxFlow = kInfiniteFlow,
             SolverWorkspace *WS = nullptr);

  /// Flow currently on arc \p ArcId (as returned by addArc).
  FlowAmount flowOn(unsigned ArcId) const;

  static constexpr FlowAmount kInfiniteFlow = INT64_MAX / 4;

private:
  static constexpr unsigned kNoArc = ~0u;

  struct Arc {
    NodeId To;
    unsigned NextArc;   // Intrusive adjacency list.
    FlowAmount Residual;
    Cost ArcCost;
  };

  unsigned numNodes() const { return static_cast<unsigned>(FirstArc.size()); }

  std::vector<unsigned> FirstArc;
  std::vector<Arc> Arcs;
  std::vector<FlowAmount> Capacity; // Original capacity per even arc id.
};

} // namespace layra

#endif // LAYRA_FLOW_MINCOSTFLOW_H
