//===- flow/MinCostFlow.cpp - Min-cost max-flow ----------------------------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "flow/MinCostFlow.h"

#include "core/SolverWorkspace.h"
#include "obs/Trace.h"

#include <algorithm>
#include <cassert>
#include <limits>

using namespace layra;

unsigned MinCostFlow::addArc(NodeId From, NodeId To, FlowAmount Cap,
                             Cost ArcCost) {
  assert(From < numNodes() && To < numNodes() && "node id out of range");
  assert(Cap >= 0 && "arc capacity must be non-negative");
  unsigned Id = static_cast<unsigned>(Arcs.size());
  Arcs.push_back({To, FirstArc[From], Cap, ArcCost});
  FirstArc[From] = Id;
  Arcs.push_back({From, FirstArc[To], 0, -ArcCost});
  FirstArc[To] = Id + 1;
  Capacity.push_back(Cap);
  return Id;
}

MinCostFlow::FlowAmount MinCostFlow::flowOn(unsigned ArcId) const {
  assert(ArcId % 2 == 0 && ArcId < Arcs.size() && "not a forward arc id");
  return Capacity[ArcId / 2] - Arcs[ArcId].Residual;
}

MinCostFlow::Result MinCostFlow::run(NodeId Source, NodeId Sink,
                                     FlowAmount MaxFlow,
                                     SolverWorkspace *WS) {
  assert(Source < numNodes() && Sink < numNodes() && Source != Sink);
  PhaseSpan FlowSpan(Phase::MinCostFlow);
  WorkspaceOrLocal LocalScope(WS);
  WS = LocalScope.get();
  constexpr Cost kInf = std::numeric_limits<Cost>::max() / 4;
  unsigned N = numNodes();
  std::vector<Cost> &Potential =
      WS->acquire(WS->Flow.Potential, N, Cost(0));

  // Bellman-Ford to initialise potentials if any arc cost is negative.
  bool HasNegative = false;
  for (const Arc &A : Arcs)
    HasNegative |= A.Residual > 0 && A.ArcCost < 0;
  if (HasNegative) {
    std::vector<Cost> Dist(N, kInf);
    Dist[Source] = 0;
    for (unsigned Round = 0; Round + 1 < N; ++Round) {
      bool Changed = false;
      for (NodeId U = 0; U < N; ++U) {
        if (Dist[U] == kInf)
          continue;
        for (unsigned A = FirstArc[U]; A != kNoArc; A = Arcs[A].NextArc) {
          if (Arcs[A].Residual <= 0)
            continue;
          Cost Candidate = Dist[U] + Arcs[A].ArcCost;
          if (Candidate < Dist[Arcs[A].To]) {
            Dist[Arcs[A].To] = Candidate;
            Changed = true;
          }
        }
      }
      if (!Changed)
        break;
    }
    for (NodeId U = 0; U < N; ++U)
      Potential[U] = Dist[U] == kInf ? 0 : Dist[U];
  }

  Result Out;
  // Dijkstra state out of the workspace; Heap is a min-heap over
  // (distance, node) maintained with push_heap/pop_heap so its storage
  // survives between augmentations and runs.
  using QueueEntry = std::pair<Cost, NodeId>;
  std::vector<QueueEntry> &Heap = WS->acquireCleared(WS->Flow.Heap);
  auto MinHeapOrder = [](const QueueEntry &A, const QueueEntry &B) {
    return A > B; // std::*_heap build max-heaps; invert for a min-heap.
  };
  while (Out.Flow < MaxFlow) {
    // Dijkstra on reduced costs.
    std::vector<Cost> &Dist = WS->acquire(WS->Flow.Dist, N, kInf);
    std::vector<unsigned> &InArc = WS->acquire(WS->Flow.InArc, N, kNoArc);
    Heap.clear();
    Dist[Source] = 0;
    Heap.push_back({0, Source});
    while (!Heap.empty()) {
      std::pop_heap(Heap.begin(), Heap.end(), MinHeapOrder);
      auto [D, U] = Heap.back();
      Heap.pop_back();
      if (D > Dist[U])
        continue;
      for (unsigned A = FirstArc[U]; A != kNoArc; A = Arcs[A].NextArc) {
        if (Arcs[A].Residual <= 0)
          continue;
        NodeId V = Arcs[A].To;
        Cost Reduced = Arcs[A].ArcCost + Potential[U] - Potential[V];
        assert(Reduced >= 0 && "negative reduced cost: bad potentials");
        if (Dist[U] + Reduced < Dist[V]) {
          Dist[V] = Dist[U] + Reduced;
          InArc[V] = A;
          Heap.push_back({Dist[V], V});
          std::push_heap(Heap.begin(), Heap.end(), MinHeapOrder);
        }
      }
    }
    if (Dist[Sink] == kInf)
      break; // Sink unreachable: max flow reached.

    for (NodeId U = 0; U < N; ++U)
      if (Dist[U] < kInf)
        Potential[U] += Dist[U];

    // Bottleneck along the found path.
    FlowAmount Push = MaxFlow - Out.Flow;
    for (NodeId V = Sink; V != Source; V = Arcs[InArc[V] ^ 1].To)
      Push = std::min(Push, Arcs[InArc[V]].Residual);
    for (NodeId V = Sink; V != Source; V = Arcs[InArc[V] ^ 1].To) {
      Arcs[InArc[V]].Residual -= Push;
      Arcs[InArc[V] ^ 1].Residual += Push;
      Out.TotalCost += Push * Arcs[InArc[V]].ArcCost;
    }
    Out.Flow += Push;
  }
  return Out;
}
