//===- ir/OperandFolding.cpp - CISC memory-operand folding -----------------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "ir/OperandFolding.h"

#include <algorithm>

using namespace layra;

namespace {
/// Where a value is consumed: number of using instructions and, when that
/// number is exactly one, the site itself.
struct UseSite {
  unsigned NumUsingInstrs = 0;
  BlockId Block = kNoBlock;
  unsigned Index = 0;
};
} // namespace

OperandFoldStats layra::foldMemoryOperands(Function &F,
                                           const TargetDesc &Target) {
  OperandFoldStats Stats;
  if (Target.MaxMemOperands == 0)
    return Stats;

  // One pass to locate, for every value, its unique consuming instruction
  // (if unique).  Phi uses count like any other use: a reload consumed by a
  // phi is simply never foldable.
  std::vector<UseSite> Sites(F.numValues());
  for (BlockId B = 0; B < F.numBlocks(); ++B) {
    const BasicBlock &BB = F.block(B);
    for (unsigned I = 0; I < BB.Instrs.size(); ++I) {
      ValueId Previous = kNoValue; // Collapse duplicate operands per instr.
      for (ValueId V : BB.Instrs[I].Uses) {
        if (V == kNoValue || V == Previous)
          continue;
        Previous = V;
        UseSite &S = Sites[V];
        if (S.NumUsingInstrs == 0 || S.Block != B || S.Index != I)
          ++S.NumUsingInstrs;
        S.Block = B;
        S.Index = I;
      }
    }
  }

  for (BlockId B = 0; B < F.numBlocks(); ++B) {
    BasicBlock &BB = F.block(B);
    std::vector<char> Erase(BB.Instrs.size(), 0);

    for (unsigned I = 0; I < BB.Instrs.size(); ++I) {
      const Instruction &Load = BB.Instrs[I];
      if (Load.Op != Opcode::Load || Load.Defs.size() != 1)
        continue;
      ValueId Temp = Load.Defs[0];
      const UseSite &Site = Sites[Temp];
      if (Site.NumUsingInstrs != 1 || Site.Block != B || Site.Index <= I)
        continue;
      Instruction &Consumer = BB.Instrs[Site.Index];
      if (Consumer.isPhi() || Consumer.Op == Opcode::Load ||
          Consumer.Op == Opcode::Store || Consumer.Op == Opcode::Copy)
        continue;

      // The slot must still hold the same value at the consumer.
      bool Clobbered = false;
      for (unsigned J = I + 1; J < Site.Index && !Clobbered; ++J)
        Clobbered = BB.Instrs[J].Op == Opcode::Store &&
                    BB.Instrs[J].SpillSlot == Load.SpillSlot;
      if (Clobbered)
        continue;

      unsigned Occurrences = static_cast<unsigned>(
          std::count(Consumer.Uses.begin(), Consumer.Uses.end(), Temp));
      assert(Occurrences > 0 && "use site without the operand");
      if (Consumer.MemUseSlots.size() + Occurrences > Target.MaxMemOperands)
        continue;

      // Fold: drop the operand(s), record the slot(s), erase the load.
      Consumer.Uses.erase(
          std::remove(Consumer.Uses.begin(), Consumer.Uses.end(), Temp),
          Consumer.Uses.end());
      Consumer.MemUseSlots.insert(Consumer.MemUseSlots.end(), Occurrences,
                                  Load.SpillSlot);
      Erase[I] = 1;
      ++Stats.LoadsFolded;
      Stats.CostSaved +=
          BB.Frequency * (Target.LoadCost - Target.MemOperandCost);
    }

    if (std::find(Erase.begin(), Erase.end(), 1) == Erase.end())
      continue;
    std::vector<Instruction> Kept;
    Kept.reserve(BB.Instrs.size());
    for (unsigned I = 0; I < BB.Instrs.size(); ++I)
      if (!Erase[I])
        Kept.push_back(std::move(BB.Instrs[I]));
    BB.Instrs = std::move(Kept);
  }
  return Stats;
}
