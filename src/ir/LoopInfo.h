//===- ir/LoopInfo.h - Natural loop detection -------------------*- C++ -*-===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Natural-loop detection and loop-depth annotation.  The spill-cost model of
/// the paper weights variable accesses by basic-block frequency; following
/// standard static-estimation practice we set frequency = 10^loopdepth.
///
//===----------------------------------------------------------------------===//

#ifndef LAYRA_IR_LOOPINFO_H
#define LAYRA_IR_LOOPINFO_H

#include "ir/Dominators.h"
#include "ir/Program.h"

#include <vector>

namespace layra {

/// One natural loop: a back edge Latch -> Header plus its body.
struct Loop {
  BlockId Header = kNoBlock;
  BlockId Latch = kNoBlock;
  /// All blocks of the loop, header included.
  std::vector<BlockId> Body;
};

/// Finds natural loops and annotates blocks with depth and frequency.
class LoopInfo {
public:
  /// Detects loops of \p F using \p Dom (back edge = edge whose target
  /// dominates its source).  Loops sharing a header are merged.
  LoopInfo(const Function &F, const DominatorTree &Dom);

  const std::vector<Loop> &loops() const { return Loops; }

  /// Loop nesting depth of \p B (0 = not in any loop).
  unsigned depth(BlockId B) const {
    assert(B < Depth.size() && "block id out of range");
    return Depth[B];
  }

  /// Writes LoopDepth and Frequency (= FreqBase^depth, saturated at
  /// \p MaxDepth) into the function's blocks.
  void annotate(Function &F, Weight FreqBase = 10,
                unsigned MaxDepth = 6) const;

private:
  std::vector<Loop> Loops;
  std::vector<unsigned> Depth;
};

} // namespace layra

#endif // LAYRA_IR_LOOPINFO_H
