//===- ir/ReloadCleanup.h - Redundant reload elimination --------*- C++ -*-===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Block-local load-store optimization over spill code (paper §2.1: "if the
/// variable can stay in a register between two consecutive uses, a load is
/// saved").  After the spill-everywhere rewriter has placed one reload per
/// use, this pass removes reloads whose slot value is already available in
/// a register within the same block -- quantifying how far the
/// spill-everywhere cost model is from a load-store-optimized one.
///
//===----------------------------------------------------------------------===//

#ifndef LAYRA_IR_RELOADCLEANUP_H
#define LAYRA_IR_RELOADCLEANUP_H

#include "ir/Program.h"

namespace layra {

/// Statistics of one cleanup run.
struct ReloadCleanupStats {
  /// Reload instructions removed.
  unsigned LoadsRemoved = 0;
  /// Static cost saved (removed loads weighted by block frequency).
  Weight CostSaved = 0;
};

/// Removes block-locally redundant reloads from \p F in place.
///
/// A reload `t2 = load [s]` is redundant when the same block already holds
/// the slot's current value in a register: either an earlier reload
/// `t1 = load [s]` or a `store v [s]` with no intervening store to `s`.
/// Uses of `t2` (including phi operands fed from this block) are rewritten
/// to the available value.  SSA form is preserved; note that reusing a
/// value extends its live range, which is exactly the pressure trade-off
/// the paper discusses.
ReloadCleanupStats eliminateRedundantReloads(Function &F);

} // namespace layra

#endif // LAYRA_IR_RELOADCLEANUP_H
