//===- ir/Interference.h - Interference graph construction ------*- C++ -*-===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builds the interference graph and the program-point live sets of a
/// function.  For strict-SSA functions the graph is chordal and its maximal
/// cliques are exactly the maximal live sets (paper §3.2); for non-SSA
/// functions the same construction yields the general (Chaitin-style) graph
/// the paper's JikesRVM evaluation uses.  Spill costs become vertex weights.
///
//===----------------------------------------------------------------------===//

#ifndef LAYRA_IR_INTERFERENCE_H
#define LAYRA_IR_INTERFERENCE_H

#include "graph/Graph.h"
#include "ir/Liveness.h"
#include "ir/Program.h"
#include "ir/Target.h"

#include <vector>

namespace layra {

class SolverWorkspace;

/// Interference graph plus the pressure facts the allocators need.
/// Vertex V of the graph corresponds 1:1 to ValueId V of the function.
struct InterferenceInfo {
  Graph G;
  /// Deduplicated live sets, one per distinct program point (sorted vertex
  /// lists).  For SSA functions every maximal clique of G appears among
  /// these; they double as the ILP packing constraints on general graphs.
  /// On multi-class functions each set may mix classes -- consumers that
  /// build per-class budgets split them (core/ProblemBuilder.cpp).
  std::vector<std::vector<VertexId>> PointLiveSets;
  /// Register pressure per class: MaxLiveByClass[c] is the largest number
  /// of class-c values simultaneously live at one program point.  Size
  /// F.maxValueClass() + 1; single-class functions get the one-element
  /// vector {MaxLive}.
  std::vector<unsigned> MaxLiveByClass;
  /// max over classes of MaxLiveByClass -- the paper's MaxLive on
  /// single-class functions.  Values of different classes never compete
  /// for a register, so the cross-class sum is deliberately not tracked.
  unsigned MaxLive = 0;
  /// Largest operand count of a single instruction: a lower bound on the
  /// registers required to emit code even when everything is spilled.
  unsigned MinRegisters = 0;
};

/// Estimated spill-everywhere cost of each value: for every definition,
/// StoreCost x block frequency; for every use, LoadCost x block frequency
/// (phi operands are charged to the predecessor they flow from; phi defs to
/// the block holding the phi).
std::vector<Weight> computeSpillCosts(const Function &F,
                                      const TargetDesc &Target);

/// Builds the interference graph of \p F with \p Costs as vertex weights.
/// Vertex names are taken from value names.
///
/// \p WS optionally supplies the per-point scratch of the backward walk.
/// \p CollectPointSets controls whether PointLiveSets is filled: chordal
/// (SSA) consumers derive the constraints from the maximal cliques instead
/// and can skip the per-point sort/dedup entirely -- G, MaxLive and
/// MinRegisters are computed either way.
InterferenceInfo buildInterference(const Function &F, const Liveness &Live,
                                   const std::vector<Weight> &Costs,
                                   SolverWorkspace *WS = nullptr,
                                   bool CollectPointSets = true);

} // namespace layra

#endif // LAYRA_IR_INTERFERENCE_H
