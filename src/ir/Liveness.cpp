//===- ir/Liveness.cpp - Iterative backward liveness -----------------------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "ir/Liveness.h"

#include "obs/Trace.h"

#include <algorithm>

using namespace layra;

Liveness::Liveness(const Function &F) {
  PhaseSpan LivenessSpan(Phase::Liveness);
  unsigned NumBlocks = F.numBlocks();
  unsigned NumValues = F.numValues();
  LiveInSets.assign(NumBlocks, BitVector(NumValues));
  LiveOutSets.assign(NumBlocks, BitVector(NumValues));

  // Per-block summaries.
  std::vector<BitVector> UpwardExposed(NumBlocks, BitVector(NumValues));
  std::vector<BitVector> Kill(NumBlocks, BitVector(NumValues));
  std::vector<BitVector> PhiDefs(NumBlocks, BitVector(NumValues));
  // PhiUsesFrom[B][P]: values consumed by phis of B along predecessor #P.
  std::vector<std::vector<BitVector>> PhiUsesFrom(NumBlocks);

  for (BlockId B = 0; B < NumBlocks; ++B) {
    const BasicBlock &BB = F.block(B);
    PhiUsesFrom[B].assign(BB.Preds.size(), BitVector(NumValues));
    for (const Instruction &I : BB.Instrs) {
      if (I.isPhi()) {
        for (ValueId V : I.Defs)
          PhiDefs[B].set(V);
        for (size_t P = 0; P < I.Uses.size(); ++P)
          if (I.Uses[P] != kNoValue)
            PhiUsesFrom[B][P].set(I.Uses[P]);
        continue;
      }
      for (ValueId V : I.Uses)
        if (V != kNoValue && !Kill[B].test(V))
          UpwardExposed[B].set(V);
      for (ValueId V : I.Defs)
        Kill[B].set(V);
    }
  }

  // Position of B in the pred list of each successor (for phi flows).
  auto PredIndexIn = [&](BlockId Succ, BlockId B) -> size_t {
    const std::vector<BlockId> &Preds = F.block(Succ).Preds;
    auto It = std::find(Preds.begin(), Preds.end(), B);
    assert(It != Preds.end() && "CFG edge without matching pred entry");
    return static_cast<size_t>(It - Preds.begin());
  };

  // Round-robin iteration to the fixed point; block count is small enough
  // that a worklist brings no measurable benefit at our scales.
  bool Changed = true;
  BitVector Tmp(NumValues);
  while (Changed) {
    Changed = false;
    for (unsigned I = NumBlocks; I-- > 0;) {
      BlockId B = I;
      const BasicBlock &BB = F.block(B);
      // LiveOut(B) = union over successors S of
      //   (LiveIn(S) \ PhiDefs(S)) + PhiUsesFrom(S, edge B->S).
      for (BlockId S : BB.Succs) {
        Tmp = LiveInSets[S];
        Tmp.subtract(PhiDefs[S]);
        Changed |= LiveOutSets[B].unionWith(Tmp);
        Changed |= LiveOutSets[B].unionWith(PhiUsesFrom[S][PredIndexIn(S, B)]);
      }
      // LiveIn(B) = PhiDefs(B) + UpwardExposed(B) + (LiveOut(B) \ Kill(B)).
      Tmp = LiveOutSets[B];
      Tmp.subtract(Kill[B]);
      Tmp.unionWith(UpwardExposed[B]);
      Tmp.unionWith(PhiDefs[B]);
      Changed |= LiveInSets[B].unionWith(Tmp);
    }
  }
}

unsigned Liveness::maxLive(const Function &F) const {
  unsigned Max = 0;
  for (BlockId B = 0; B < F.numBlocks(); ++B) {
    Max = std::max(Max, static_cast<unsigned>(liveIn(B).count()));
    walkBlockBackward(F, B, [&](unsigned I, const BitVector &Live) {
      // A def that is never used still occupies a register at its def point.
      unsigned DeadDefs = 0;
      for (ValueId V : F.block(B).Instrs[I].Defs)
        if (!Live.test(V))
          ++DeadDefs;
      Max = std::max(Max, static_cast<unsigned>(Live.count()) + DeadDefs);
    });
  }
  return Max;
}

unsigned Liveness::pressureAfter(const Function &F, BlockId B,
                                 unsigned Index) const {
  unsigned Result = 0;
  bool Found = false;
  walkBlockBackward(F, B, [&](unsigned I, const BitVector &Live) {
    if (I == Index) {
      Result = static_cast<unsigned>(Live.count());
      Found = true;
    }
  });
  assert(Found && "pressureAfter: no such instruction (phi or out of range)");
  (void)Found;
  return Result;
}
