//===- ir/Liveness.h - Iterative backward liveness --------------*- C++ -*-===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-block live-in/live-out sets via the classic backward dataflow fixed
/// point, with SSA-aware phi semantics: a phi's operand is live out of the
/// corresponding predecessor (not live into the phi's block), and a phi's
/// result is defined at the top of its block.
///
//===----------------------------------------------------------------------===//

#ifndef LAYRA_IR_LIVENESS_H
#define LAYRA_IR_LIVENESS_H

#include "ir/Program.h"
#include "support/BitVector.h"

#include <vector>

namespace layra {

/// Liveness analysis result over a function.
class Liveness {
public:
  /// Runs the analysis on \p F (works for SSA and non-SSA functions alike).
  explicit Liveness(const Function &F);

  const BitVector &liveIn(BlockId B) const {
    assert(B < LiveInSets.size() && "block id out of range");
    return LiveInSets[B];
  }
  const BitVector &liveOut(BlockId B) const {
    assert(B < LiveOutSets.size() && "block id out of range");
    return LiveOutSets[B];
  }

  /// Walks block \p B backwards, invoking \p Visit(InstrIndex, Live) just
  /// *before* each instruction's effect is applied (i.e. Live is the set
  /// live immediately after the instruction), then updating Live across it.
  /// Phi instructions at the top are skipped (their defs/uses live at block
  /// boundaries); after the walk Live equals liveIn(B) minus phi defs.
  ///
  /// This is the primitive both the interference builder and the pressure
  /// computation share.
  template <typename VisitorT>
  void walkBlockBackward(const Function &F, BlockId B, VisitorT Visit) const {
    BitVector Live = liveOut(B);
    const BasicBlock &BB = F.block(B);
    for (unsigned I = static_cast<unsigned>(BB.Instrs.size()); I-- > 0;) {
      const Instruction &Instr = BB.Instrs[I];
      if (Instr.isPhi())
        break; // Phis are block-boundary effects, handled by the caller.
      Visit(I, static_cast<const BitVector &>(Live));
      for (ValueId V : Instr.Defs)
        Live.reset(V);
      for (ValueId V : Instr.Uses)
        if (V != kNoValue)
          Live.set(V);
    }
  }

  /// The maximum number of simultaneously live values over every program
  /// point of \p F (paper: MaxLive).  Points are block boundaries and the
  /// points between consecutive instructions; values defined and never used
  /// count as live at their definition point.
  unsigned maxLive(const Function &F) const;

  /// Register pressure right after instruction \p I of block \p B.
  /// Convenience for tests; prefer walkBlockBackward in algorithms.
  unsigned pressureAfter(const Function &F, BlockId B, unsigned I) const;

private:
  std::vector<BitVector> LiveInSets;
  std::vector<BitVector> LiveOutSets;
};

} // namespace layra

#endif // LAYRA_IR_LIVENESS_H
