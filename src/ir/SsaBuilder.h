//===- ir/SsaBuilder.h - SSA construction -----------------------*- C++ -*-===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pruned-SSA construction (Cytron et al. phi placement on iterated
/// dominance frontiers, restricted to live-in variables, followed by
/// dominator-tree renaming).  The paper's chordal evaluation consumes
/// interference graphs of *strict SSA* programs; this pass produces them
/// from the non-SSA functions the program generator emits.
///
//===----------------------------------------------------------------------===//

#ifndef LAYRA_IR_SSABUILDER_H
#define LAYRA_IR_SSABUILDER_H

#include "ir/Program.h"

#include <vector>

namespace layra {

/// Result of SSA conversion.
struct SsaConversion {
  /// The converted function (fresh value ids, phis inserted).
  Function Ssa;
  /// OriginalOf[NewValue] = the pre-SSA variable it renames.
  std::vector<ValueId> OriginalOf;
  /// Number of phi instructions inserted.
  unsigned NumPhis = 0;
};

/// Converts \p F (any verified function) to pruned SSA form.
///
/// Block structure and edges are preserved (same BlockIds, same order);
/// every value is renamed.  Uses reached by no definition become kNoValue
/// phi operands (our generators never produce such paths; hand-written IR
/// may).  The result satisfies verifyFunction(Ssa, /*ExpectSsa=*/true).
SsaConversion convertToSsa(const Function &F);

} // namespace layra

#endif // LAYRA_IR_SSABUILDER_H
