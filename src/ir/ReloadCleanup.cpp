//===- ir/ReloadCleanup.cpp - Redundant reload elimination ----------------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "ir/ReloadCleanup.h"

#include <algorithm>
#include <map>

using namespace layra;

ReloadCleanupStats layra::eliminateRedundantReloads(Function &F) {
  ReloadCleanupStats Stats;
  // Global substitution map (removed reload temp -> available value);
  // applied to phi operands afterwards, where the key is (pred, temp).
  std::map<ValueId, ValueId> Replacement;
  std::vector<BlockId> RemovedIn(F.numValues(), kNoBlock);

  for (BlockId B = 0; B < F.numBlocks(); ++B) {
    BasicBlock &BB = F.block(B);
    std::map<int, ValueId> Available; // Slot -> value currently holding it.
    std::vector<Instruction> Kept;
    Kept.reserve(BB.Instrs.size());

    auto RewriteUses = [&](Instruction &I) {
      if (I.isPhi())
        return; // Phi operands belong to edges; handled below.
      for (ValueId &V : I.Uses) {
        auto It = Replacement.find(V);
        if (It != Replacement.end() && RemovedIn[V] == B)
          V = It->second;
      }
    };

    for (Instruction &I : BB.Instrs) {
      RewriteUses(I);
      if (I.Op == Opcode::Load && I.SpillSlot >= 0) {
        auto It = Available.find(I.SpillSlot);
        if (It != Available.end()) {
          // Redundant: the slot's value is already in a register.
          ValueId Temp = I.Defs[0];
          Replacement[Temp] = It->second;
          RemovedIn[Temp] = B;
          Stats.LoadsRemoved += 1;
          Stats.CostSaved += BB.Frequency;
          continue; // Drop the instruction.
        }
        Available[I.SpillSlot] = I.Defs[0];
      } else if (I.Op == Opcode::Store && I.SpillSlot >= 0) {
        // After the store, the stored register still holds the value.
        Available[I.SpillSlot] = I.Uses[0];
      }
      Kept.push_back(std::move(I));
    }
    BB.Instrs = std::move(Kept);
  }

  // Rewrite phi operands whose reload was removed in the matching
  // predecessor.
  for (BlockId B = 0; B < F.numBlocks(); ++B) {
    BasicBlock &BB = F.block(B);
    for (Instruction &I : BB.Instrs) {
      if (!I.isPhi())
        break;
      for (size_t P = 0; P < I.Uses.size(); ++P) {
        ValueId V = I.Uses[P];
        if (V == kNoValue || V >= RemovedIn.size())
          continue;
        auto It = Replacement.find(V);
        if (It != Replacement.end() && RemovedIn[V] == BB.Preds[P])
          I.Uses[P] = It->second;
      }
    }
  }
  return Stats;
}
