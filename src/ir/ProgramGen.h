//===- ir/ProgramGen.h - Structured random program generator ----*- C++ -*-===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A generator of random *structured* programs (nested if/else and do-while
/// regions over a pool of variables).  This is the stand-in for the paper's
/// proprietary benchmark inputs: the generated functions are reducible,
/// define every variable before any use on every path, and exhibit the loop
/// nesting the spill-cost model feeds on.  SSA conversion of these functions
/// yields the chordal interference graphs of the paper's §6.1; the raw
/// non-SSA form yields the general graphs of §6.2.
///
//===----------------------------------------------------------------------===//

#ifndef LAYRA_IR_PROGRAMGEN_H
#define LAYRA_IR_PROGRAMGEN_H

#include "ir/Program.h"
#include "support/Random.h"

#include <string>

namespace layra {

/// Shape parameters of a generated function.
struct ProgramGenOptions {
  /// Size of the variable pool; redefinitions make the non-SSA form
  /// interesting and multiply SSA values.
  unsigned NumVars = 24;
  /// Number of variables defined as "parameters" in the entry block.
  unsigned NumParams = 4;
  /// Hard cap on generated basic blocks.
  unsigned MaxBlocks = 48;
  /// Maximum loop/if nesting depth.
  unsigned MaxNesting = 3;
  /// Instructions per straight-line block: uniform in [Min, Max].
  unsigned ExprsPerBlockMin = 2;
  unsigned ExprsPerBlockMax = 6;
  /// Probability that the next region is a do-while loop / an if-else.
  double LoopProb = 0.30;
  double IfProb = 0.35;
  /// Probability that an instruction is a copy rather than an op.
  double CopyProb = 0.10;
  /// Regions chained in sequence at each nesting level: uniform [1, Max].
  unsigned MaxRegionsPerSeq = 3;
  /// Register classes the variable pool draws from (ir/Target.h).  1 keeps
  /// the generator byte-identical to its single-class history: no extra
  /// RNG draws happen.  With more classes, each pool variable lands in a
  /// non-default class with probability AltClassProb; copies then stay
  /// within one class (cross-class moves are conversions, not coalescing
  /// candidates), while ordinary ops may mix classes freely.
  unsigned NumClasses = 1;
  double AltClassProb = 0.35;
};

/// Generates a verified, fully reachable, non-SSA function.
/// Deterministic given \p R's state.
Function generateFunction(Rng &R, const ProgramGenOptions &Options,
                          std::string Name = "f");

} // namespace layra

#endif // LAYRA_IR_PROGRAMGEN_H
