//===- ir/SpillRewriter.h - Spill-everywhere code insertion -----*- C++ -*-===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Materialises a spill-everywhere decision as IR: every spilled value gets a
/// stack slot, a store after each definition and a reload into a fresh
/// short-lived temporary before each use (paper §4.3).  Reload temporaries
/// transiently raise pressure around spilled uses; the paper notes real
/// backends handle this with local repair -- here the verifier bound accounts
/// for the operand count of the widest instruction.
///
//===----------------------------------------------------------------------===//

#ifndef LAYRA_IR_SPILLREWRITER_H
#define LAYRA_IR_SPILLREWRITER_H

#include "ir/Program.h"

#include <vector>

namespace layra {

/// Statistics of a rewrite.
struct SpillRewriteStats {
  unsigned NumStores = 0;
  unsigned NumLoads = 0;
  unsigned NumSlots = 0;
};

/// Rewrites \p F in place, spilling every value V with Spilled[V] != 0.
///
/// - after each def of V: `store V [slot]`;
/// - before each non-phi use: `T = load [slot]`, the use renamed to T;
/// - phi operands: the reload is placed at the end of the predecessor (before
///   its terminator) and the operand renamed;
/// - a spilled phi def keeps its phi, immediately followed by a store (the
///   phi's register lives only for that instant).
///
/// Uses inside a single instruction share one reload.  The function remains
/// verifiable (SSA-ness is preserved when \p F was in SSA form: each reload
/// defines a fresh value).
SpillRewriteStats rewriteSpills(Function &F, const std::vector<char> &Spilled);

} // namespace layra

#endif // LAYRA_IR_SPILLREWRITER_H
