//===- ir/SpillRewriter.cpp - Spill-everywhere code insertion --------------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "ir/SpillRewriter.h"

#include "obs/Trace.h"

#include <string>

using namespace layra;

SpillRewriteStats layra::rewriteSpills(Function &F,
                                       const std::vector<char> &Spilled) {
  assert(Spilled.size() >= F.numValues() && "one flag per value required");
  PhaseSpan RewriteSpan(Phase::SpillRewrite);
  SpillRewriteStats Stats;

  // Assign slots densely.
  std::vector<int> SlotOf(F.numValues(), -1);
  for (ValueId V = 0; V < F.numValues(); ++V)
    if (Spilled[V])
      SlotOf[V] = static_cast<int>(Stats.NumSlots++);

  auto MakeReload = [&](ValueId V) {
    Instruction Load;
    Load.Op = Opcode::Load;
    Load.SpillSlot = SlotOf[V];
    // A reload temporary occupies a register of the spilled value's file:
    // spill code never moves a value across register classes.
    ValueId Temp = F.makeValue("rl." + std::to_string(Stats.NumLoads),
                               F.valueClass(V));
    Load.Defs.push_back(Temp);
    ++Stats.NumLoads;
    return std::pair(Load, Temp);
  };
  auto MakeStore = [&](ValueId V) {
    Instruction Store;
    Store.Op = Opcode::Store;
    Store.SpillSlot = SlotOf[V];
    Store.Uses.push_back(V);
    ++Stats.NumStores;
    return Store;
  };

  // Reloads to append at the end of a predecessor for phi operands; filled
  // while scanning phis, applied afterwards so instruction indices in the
  // main loop stay stable.
  struct PendingEdgeReload {
    BlockId Pred;
    Instruction Load;
  };
  std::vector<PendingEdgeReload> EdgeReloads;

  for (BlockId B = 0; B < F.numBlocks(); ++B) {
    BasicBlock &BB = F.block(B);
    std::vector<Instruction> NewInstrs;
    NewInstrs.reserve(BB.Instrs.size());

    for (Instruction &I : BB.Instrs) {
      if (I.isPhi()) {
        for (size_t U = 0; U < I.Uses.size(); ++U) {
          ValueId V = I.Uses[U];
          if (V == kNoValue || !Spilled[V])
            continue;
          auto [Load, Temp] = MakeReload(V);
          EdgeReloads.push_back({BB.Preds[U], std::move(Load)});
          I.Uses[U] = Temp;
        }
        NewInstrs.push_back(std::move(I));
        continue;
      }

      // Reload spilled operands; one reload per distinct value.
      ValueId ReloadedValue = kNoValue, ReloadedTemp = kNoValue;
      for (ValueId &V : I.Uses) {
        if (V == kNoValue || !Spilled[V])
          continue;
        if (V == ReloadedValue) {
          V = ReloadedTemp;
          continue;
        }
        auto [Load, Temp] = MakeReload(V);
        NewInstrs.push_back(std::move(Load));
        ReloadedValue = V;
        ReloadedTemp = Temp;
        V = Temp;
      }

      bool NeedsStore = false;
      for (ValueId V : I.Defs)
        NeedsStore |= Spilled[V] != 0;
      std::vector<ValueId> DefsCopy = I.Defs;
      NewInstrs.push_back(std::move(I));
      if (NeedsStore)
        for (ValueId V : DefsCopy)
          if (Spilled[V])
            NewInstrs.push_back(MakeStore(V));
    }
    BB.Instrs = std::move(NewInstrs);
  }

  // Stores after spilled phi defs (phis must stay a prefix of the block).
  for (BlockId B = 0; B < F.numBlocks(); ++B) {
    BasicBlock &BB = F.block(B);
    std::vector<Instruction> Stores;
    size_t PhiEnd = 0;
    while (PhiEnd < BB.Instrs.size() && BB.Instrs[PhiEnd].isPhi()) {
      for (ValueId V : BB.Instrs[PhiEnd].Defs)
        if (Spilled[V])
          Stores.push_back(MakeStore(V));
      ++PhiEnd;
    }
    BB.Instrs.insert(BB.Instrs.begin() + static_cast<long>(PhiEnd),
                     Stores.begin(), Stores.end());
  }

  // Apply edge reloads before each predecessor's terminator.
  for (PendingEdgeReload &R : EdgeReloads) {
    BasicBlock &Pred = F.block(R.Pred);
    assert(!Pred.Instrs.empty() && Pred.Instrs.back().isTerminator() &&
           "predecessor must end in a terminator");
    Pred.Instrs.insert(Pred.Instrs.end() - 1, std::move(R.Load));
  }

  return Stats;
}
