//===- ir/ProgramGen.cpp - Structured random program generator -------------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "ir/ProgramGen.h"

#include <algorithm>
#include <string>

using namespace layra;

namespace {
/// Generation state: the function under construction plus the set of
/// variables guaranteed to be defined on every path to the current point.
struct GenState {
  Rng &R;
  const ProgramGenOptions &Opt;
  Function F;
  std::vector<ValueId> Vars;    // The variable pool.
  std::vector<char> Defined;    // Defined-on-all-paths flags, by pool index.
  unsigned BlocksLeft;

  explicit GenState(Rng &R, const ProgramGenOptions &Opt, std::string Name)
      : R(R), Opt(Opt), F(std::move(Name)),
        BlocksLeft(std::max(4u, Opt.MaxBlocks)) {}

  BlockId newBlock() {
    assert(BlocksLeft > 0 && "block budget exhausted");
    --BlocksLeft;
    return F.makeBlock();
  }

  /// Picks a defined variable uniformly.
  ValueId pickDefined() {
    std::vector<unsigned> Candidates;
    for (unsigned I = 0; I < Vars.size(); ++I)
      if (Defined[I])
        Candidates.push_back(I);
    assert(!Candidates.empty() && "no defined variables to use");
    return Vars[Candidates[R.nextBelow(Candidates.size())]];
  }

  /// Emits a non-terminator instruction into \p B defining a pool variable.
  ///
  /// The RNG draw sequence of the single-class configuration is load-
  /// bearing: every committed suite is a pure function of it.  Class
  /// handling therefore only ever *adds* draws, and only when
  /// Opt.NumClasses > 1.
  void emitExpr(BlockId B) {
    Instruction I;
    bool IsCopy = R.nextBool(Opt.CopyProb);
    I.Op = IsCopy ? Opcode::Copy : Opcode::Op;
    unsigned NumUses = IsCopy ? 1 : 1 + static_cast<unsigned>(R.nextBelow(3));
    for (unsigned U = 0; U < NumUses; ++U)
      I.Uses.push_back(pickDefined());
    unsigned Target = static_cast<unsigned>(R.nextBelow(Vars.size()));
    if (IsCopy && Opt.NumClasses > 1 &&
        F.valueClass(Vars[Target]) != F.valueClass(I.Uses[0])) {
      // Copies stay within one register class (a cross-class move is a
      // conversion, not a coalescing candidate): retarget to a variable of
      // the source's class.  The source's own pool variable has that
      // class, so the candidate list is never empty.
      std::vector<unsigned> SameClass;
      for (unsigned V = 0; V < Vars.size(); ++V)
        if (F.valueClass(Vars[V]) == F.valueClass(I.Uses[0]))
          SameClass.push_back(V);
      Target = SameClass[R.nextBelow(SameClass.size())];
    }
    I.Defs.push_back(Vars[Target]);
    F.block(B).Instrs.push_back(std::move(I));
    Defined[Target] = 1;
  }

  /// Fills \p B with a random number of expressions.
  void fillBlock(BlockId B) {
    unsigned Count = Opt.ExprsPerBlockMin +
                     static_cast<unsigned>(R.nextBelow(
                         Opt.ExprsPerBlockMax - Opt.ExprsPerBlockMin + 1));
    for (unsigned I = 0; I < Count; ++I)
      emitExpr(B);
  }

  /// Appends a conditional branch using a defined variable.  No-op if the
  /// block is already terminated (an if-else head is branched once but
  /// flows into both arms).
  void emitBranch(BlockId B) {
    std::vector<Instruction> &Instrs = F.block(B).Instrs;
    if (!Instrs.empty() && Instrs.back().isTerminator())
      return;
    Instruction I;
    I.Op = Opcode::Branch;
    I.Uses.push_back(pickDefined());
    Instrs.push_back(std::move(I));
  }

  /// Emits a sequence of regions starting in a fresh block reached from
  /// \p From; returns the open exit block of the sequence (no terminator).
  BlockId emitSeq(BlockId From, unsigned Depth);

  /// Emits one region (plain block / if-else / do-while); returns its open
  /// exit block.
  BlockId emitRegion(BlockId From, unsigned Depth);
};

BlockId GenState::emitRegion(BlockId From, unsigned Depth) {
  // Region head: a fresh block linked from the predecessor.
  BlockId Head = newBlock();
  emitBranch(From);
  F.addEdge(From, Head);
  fillBlock(Head);

  // Leaf if the budget or nesting depth is exhausted.
  bool CanNest = Depth < Opt.MaxNesting && BlocksLeft >= 6;
  if (!CanNest)
    return Head;

  double Dice = R.nextDouble();
  if (Dice < Opt.LoopProb) {
    // Do-while loop: Head -> body... -> Latch; Latch branches back to Head
    // and out to a fresh exit.  (Body always executes at least once, so
    // variables defined inside count as defined afterwards.)  One block is
    // reserved for the loop exit while the body spends the budget.
    --BlocksLeft;
    BlockId BodyExit = emitSeq(Head, Depth + 1);
    ++BlocksLeft;
    emitBranch(BodyExit);
    F.addEdge(BodyExit, Head); // Back edge.
    BlockId Exit = newBlock();
    F.addEdge(BodyExit, Exit);
    fillBlock(Exit);
    return Exit;
  }
  if (Dice < Opt.LoopProb + Opt.IfProb && BlocksLeft >= 8) {
    // If-else: Head branches to Then-seq and Else-seq, joining in a merge
    // block (reserved up front).  Only variables defined on both arms stay
    // defined.
    --BlocksLeft;
    std::vector<char> Before = Defined;
    BlockId ThenExit = emitSeq(Head, Depth + 1);
    std::vector<char> AfterThen = Defined;
    Defined = Before;
    BlockId ElseExit = emitSeq(Head, Depth + 1);
    for (size_t I = 0; I < Defined.size(); ++I)
      Defined[I] = Defined[I] && AfterThen[I];
    ++BlocksLeft;

    BlockId Merge = newBlock();
    emitBranch(ThenExit);
    F.addEdge(ThenExit, Merge);
    emitBranch(ElseExit);
    F.addEdge(ElseExit, Merge);
    fillBlock(Merge);
    return Merge;
  }
  return Head;
}

BlockId GenState::emitSeq(BlockId From, unsigned Depth) {
  unsigned Regions =
      1 + static_cast<unsigned>(R.nextBelow(Opt.MaxRegionsPerSeq));
  BlockId Current = From;
  for (unsigned I = 0; I < Regions; ++I) {
    if (BlocksLeft < 4)
      break;
    Current = emitRegion(Current, Depth);
  }
  // emitRegion always opens a fresh block, so Current != From here unless
  // the budget was exhausted immediately; either way Current is open.
  return Current;
}
} // namespace

Function layra::generateFunction(Rng &R, const ProgramGenOptions &Options,
                                 std::string Name) {
  assert(Options.NumVars > 0 && "need at least one variable");
  assert(Options.ExprsPerBlockMin <= Options.ExprsPerBlockMax &&
         "bad expression count range");
  GenState S(R, Options, std::move(Name));

  // Entry block defines the parameters.
  BlockId Entry = S.newBlock();
  S.Vars.reserve(Options.NumVars);
  S.Defined.assign(Options.NumVars, 0);
  assert(Options.NumClasses >= 1 && Options.NumClasses <= kMaxRegClasses &&
         "register class count out of range");
  for (unsigned I = 0; I < Options.NumVars; ++I) {
    // Class draws happen only in multi-class mode so the single-class RNG
    // stream (and with it every committed suite) stays bit-identical.
    RegClassId Class = 0;
    if (Options.NumClasses > 1 && R.nextBool(Options.AltClassProb))
      Class = 1 + static_cast<RegClassId>(
                      R.nextBelow(Options.NumClasses - 1));
    S.Vars.push_back(S.F.makeValue("t" + std::to_string(I), Class));
  }
  unsigned NumParams = std::min(std::max(1u, Options.NumParams),
                                Options.NumVars);
  for (unsigned I = 0; I < NumParams; ++I) {
    Instruction Def;
    Def.Op = Opcode::Op; // Parameter materialisation / constant.
    Def.Defs.push_back(S.Vars[I]);
    S.F.block(Entry).Instrs.push_back(std::move(Def));
    S.Defined[I] = 1;
  }
  S.fillBlock(Entry);

  BlockId Exit = S.emitSeq(Entry, 0);

  // Return a couple of live results.
  Instruction Ret;
  Ret.Op = Opcode::Return;
  Ret.Uses.push_back(S.pickDefined());
  Ret.Uses.push_back(S.pickDefined());
  S.F.block(Exit).Instrs.push_back(std::move(Ret));

  assert(verifyFunction(S.F) && "generator produced an invalid function");
  return std::move(S.F);
}
