//===- ir/Dominators.cpp - Dominator tree and frontiers -------------------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "ir/Dominators.h"

#include <algorithm>

using namespace layra;

DominatorTree::DominatorTree(const Function &Func) : F(Func) {
  unsigned N = F.numBlocks();
  Rpo.assign(N, ~0u);
  Idom.assign(N, kNoBlock);
  Kids.resize(N);

  // Iterative post-order DFS from the entry.
  std::vector<BlockId> Post;
  Post.reserve(N);
  {
    std::vector<char> Visited(N, 0);
    // Stack of (block, next successor index).
    std::vector<std::pair<BlockId, unsigned>> Stack;
    Stack.push_back({F.entry(), 0});
    Visited[F.entry()] = 1;
    while (!Stack.empty()) {
      auto &[B, NextSucc] = Stack.back();
      const std::vector<BlockId> &Succs = F.block(B).Succs;
      if (NextSucc < Succs.size()) {
        BlockId S = Succs[NextSucc++];
        if (!Visited[S]) {
          Visited[S] = 1;
          Stack.push_back({S, 0});
        }
        continue;
      }
      Post.push_back(B);
      Stack.pop_back();
    }
  }
  RpoBlocks.assign(Post.rbegin(), Post.rend());
  for (unsigned I = 0; I < RpoBlocks.size(); ++I)
    Rpo[RpoBlocks[I]] = I;

  // Cooper-Harvey-Kennedy iteration to a fixed point.
  auto Intersect = [&](BlockId A, BlockId B) {
    while (A != B) {
      while (Rpo[A] > Rpo[B])
        A = Idom[A];
      while (Rpo[B] > Rpo[A])
        B = Idom[B];
    }
    return A;
  };

  Idom[F.entry()] = F.entry(); // Temporary self-idom to seed the iteration.
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (BlockId B : RpoBlocks) {
      if (B == F.entry())
        continue;
      BlockId NewIdom = kNoBlock;
      for (BlockId P : F.block(B).Preds) {
        if (!isReachable(P) || Idom[P] == kNoBlock)
          continue;
        NewIdom = NewIdom == kNoBlock ? P : Intersect(P, NewIdom);
      }
      if (NewIdom != kNoBlock && Idom[B] != NewIdom) {
        Idom[B] = NewIdom;
        Changed = true;
      }
    }
  }
  Idom[F.entry()] = kNoBlock;

  for (BlockId B : RpoBlocks)
    if (B != F.entry() && Idom[B] != kNoBlock)
      Kids[Idom[B]].push_back(B);

  // DFS numbering of the dominator tree for O(1) dominance queries.
  DfsIn.assign(N, 0);
  DfsOut.assign(N, 0);
  unsigned Clock = 0;
  std::vector<std::pair<BlockId, unsigned>> Stack;
  Stack.push_back({F.entry(), 0});
  DfsIn[F.entry()] = ++Clock;
  while (!Stack.empty()) {
    auto &[B, NextKid] = Stack.back();
    if (NextKid < Kids[B].size()) {
      BlockId K = Kids[B][NextKid++];
      DfsIn[K] = ++Clock;
      Stack.push_back({K, 0});
      continue;
    }
    DfsOut[B] = ++Clock;
    Stack.pop_back();
  }
}

bool DominatorTree::dominates(BlockId A, BlockId B) const {
  assert(isReachable(A) && isReachable(B) && "dominance of unreachable block");
  return DfsIn[A] <= DfsIn[B] && DfsOut[B] <= DfsOut[A];
}

std::vector<BlockId> DominatorTree::domTreePreorder() const {
  std::vector<BlockId> Order;
  Order.reserve(RpoBlocks.size());
  std::vector<BlockId> Stack{F.entry()};
  while (!Stack.empty()) {
    BlockId B = Stack.back();
    Stack.pop_back();
    Order.push_back(B);
    // Push children in reverse so they pop in natural order.
    for (auto It = Kids[B].rbegin(); It != Kids[B].rend(); ++It)
      Stack.push_back(*It);
  }
  return Order;
}

void DominatorTree::computeFrontiers() {
  // Cooper-Harvey-Kennedy dominance-frontier computation: for each join
  // point, walk up from each predecessor to the idom.
  Frontiers.assign(F.numBlocks(), {});
  for (BlockId B : RpoBlocks) {
    const std::vector<BlockId> &Preds = F.block(B).Preds;
    if (Preds.size() < 2)
      continue;
    for (BlockId P : Preds) {
      if (!isReachable(P))
        continue;
      BlockId Runner = P;
      while (Runner != Idom[B]) {
        std::vector<BlockId> &Fr = Frontiers[Runner];
        if (std::find(Fr.begin(), Fr.end(), B) == Fr.end())
          Fr.push_back(B);
        Runner = Idom[Runner];
        assert(Runner != kNoBlock && "frontier walk escaped the entry");
      }
    }
  }
  FrontiersComputed = true;
}

const std::vector<BlockId> &DominatorTree::dominanceFrontier(BlockId B) {
  assert(isReachable(B) && "frontier of unreachable block");
  if (!FrontiersComputed)
    computeFrontiers();
  return Frontiers[B];
}
