//===- ir/SsaBuilder.cpp - SSA construction ---------------------------------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "ir/SsaBuilder.h"

#include "ir/Dominators.h"
#include "ir/Liveness.h"
#include "support/Compiler.h"
#include <cstdio>

#include <algorithm>
#include <string>

using namespace layra;

namespace {
/// State threaded through the renaming walk.
struct RenameState {
  const Function &Old;
  Function &New;
  SsaConversion &Out;
  DominatorTree &Dom;
  /// PhiVars[B] = original variables needing a phi at block B.
  std::vector<std::vector<ValueId>> PhiVars;
  /// Reaching definition stack per original variable.
  std::vector<std::vector<ValueId>> Stack;
  /// Version counters for naming.
  std::vector<unsigned> Version;

  ValueId freshValue(ValueId OldVar) {
    std::string Base = Old.valueName(OldVar);
    if (Base.empty())
      Base = "v" + std::to_string(OldVar);
    // Every SSA version of a variable lives in the variable's register
    // class; classes partition values, SSA renaming must not move them.
    ValueId Id =
        New.makeValue(Base + "." + std::to_string(Version[OldVar]++),
                      Old.valueClass(OldVar));
    assert(Id == Out.OriginalOf.size() && "value ids must stay dense");
    Out.OriginalOf.push_back(OldVar);
    return Id;
  }

  ValueId reachingDef(ValueId OldVar) const {
    return Stack[OldVar].empty() ? kNoValue : Stack[OldVar].back();
  }
};
} // namespace

/// Renames block \p B and recurses over dominator-tree children.
static void renameBlock(RenameState &S, BlockId B) {
  size_t PushedCount = 0;
  std::vector<ValueId> PushedVars; // To pop on exit, in order.

  BasicBlock &NewBB = S.New.block(B);
  // Phi shells were created before the walk (successor edges may feed them
  // before this block is renamed); here we only mint their defs.
  for (size_t PhiIndex = 0; PhiIndex < S.PhiVars[B].size(); ++PhiIndex) {
    ValueId OldVar = S.PhiVars[B][PhiIndex];
    Instruction &Phi = NewBB.Instrs[PhiIndex];
    assert(Phi.isPhi() && Phi.Defs.empty() && "phi shell malformed");
    ValueId NewDef = S.freshValue(OldVar);
    Phi.Defs.push_back(NewDef);
    S.Stack[OldVar].push_back(NewDef);
    PushedVars.push_back(OldVar);
    ++PushedCount;
    ++S.Out.NumPhis;
  }

  for (const Instruction &OldInstr : S.Old.block(B).Instrs) {
    Instruction NewInstr;
    NewInstr.Op = OldInstr.Op;
    NewInstr.SpillSlot = OldInstr.SpillSlot;
    assert(!OldInstr.isPhi() && "input to SSA construction already has phis");
    for (ValueId V : OldInstr.Uses) {
      ValueId Def = S.reachingDef(V);
      assert(Def != kNoValue && "use before any def; generator bug?");
      NewInstr.Uses.push_back(Def);
    }
    for (ValueId V : OldInstr.Defs) {
      ValueId NewDef = S.freshValue(V);
      NewInstr.Defs.push_back(NewDef);
      S.Stack[V].push_back(NewDef);
      PushedVars.push_back(V);
      ++PushedCount;
    }
    NewBB.Instrs.push_back(std::move(NewInstr));
  }

  // Feed phi operands of successors along each outgoing edge.  The operand
  // slot is indexed by the *new* function's predecessor order (the clone may
  // list predecessors in a different order than the original).
  for (BlockId Succ : S.Old.block(B).Succs) {
    const std::vector<BlockId> &Preds = S.New.block(Succ).Preds;
    auto It = std::find(Preds.begin(), Preds.end(), B);
    assert(It != Preds.end() && "asymmetric CFG edge");
    size_t PredIndex = static_cast<size_t>(It - Preds.begin());
    BasicBlock &SuccBB = S.New.block(Succ);
    for (size_t PhiIndex = 0; PhiIndex < S.PhiVars[Succ].size(); ++PhiIndex) {
      ValueId OldVar = S.PhiVars[Succ][PhiIndex];
      Instruction &Phi = SuccBB.Instrs[PhiIndex];
      assert(Phi.isPhi() && "phi shell missing");
      Phi.Uses[PredIndex] = S.reachingDef(OldVar);
    }
  }

  for (BlockId Kid : S.Dom.children(B))
    renameBlock(S, Kid);

  for (size_t I = PushedCount; I-- > 0;)
    S.Stack[PushedVars[I]].pop_back();
}

SsaConversion layra::convertToSsa(const Function &F) {
  assert(verifyFunction(F) && "convertToSsa requires a verified function");
  SsaConversion Out;
  Out.Ssa = Function(F.name());

  // Clone the CFG skeleton (blocks, names, frequencies, edges).
  for (BlockId B = 0; B < F.numBlocks(); ++B) {
    BlockId NewB = Out.Ssa.makeBlock(F.block(B).Name);
    assert(NewB == B && "block ids must be preserved");
    Out.Ssa.block(NewB).LoopDepth = F.block(B).LoopDepth;
    Out.Ssa.block(NewB).Frequency = F.block(B).Frequency;
  }
  for (BlockId B = 0; B < F.numBlocks(); ++B)
    for (BlockId S : F.block(B).Succs)
      Out.Ssa.addEdge(B, S);

  DominatorTree Dom(F);
  Liveness Live(F);

  // Phi placement: iterated dominance frontier of each variable's def
  // blocks, pruned to blocks where the variable is live-in.
  std::vector<std::vector<BlockId>> DefBlocksOf(F.numValues());
  for (BlockId B = 0; B < F.numBlocks(); ++B)
    for (const Instruction &I : F.block(B).Instrs)
      for (ValueId V : I.Defs) {
        std::vector<BlockId> &DB = DefBlocksOf[V];
        if (DB.empty() || DB.back() != B)
          DB.push_back(B);
      }

  std::vector<std::vector<ValueId>> PhiVars(F.numBlocks());
  std::vector<unsigned> Placed(F.numBlocks(), ~0u); // Last var placed per block.
  for (ValueId V = 0; V < F.numValues(); ++V) {
    std::vector<BlockId> Work = DefBlocksOf[V];
    std::vector<char> InWork(F.numBlocks(), 0);
    for (BlockId B : Work)
      InWork[B] = 1;
    while (!Work.empty()) {
      BlockId B = Work.back();
      Work.pop_back();
      if (!Dom.isReachable(B))
        continue;
      for (BlockId J : Dom.dominanceFrontier(B)) {
        if (Placed[J] == V)
          continue;
        if (!Live.liveIn(J).test(V))
          continue; // Pruned SSA: dead at the join, no phi needed.
        Placed[J] = V;
        PhiVars[J].push_back(V);
        if (!InWork[J]) {
          InWork[J] = 1;
          Work.push_back(J);
        }
      }
    }
  }

  for (BlockId B = 0; B < F.numBlocks(); ++B)
    assert(Dom.isReachable(B) && "convertToSsa requires a reachable CFG");

  // Create phi shells up front: operand feeding along CFG edges can happen
  // before the owning block is renamed.
  for (BlockId B = 0; B < F.numBlocks(); ++B)
    for (size_t I = 0; I < PhiVars[B].size(); ++I) {
      Instruction Phi;
      Phi.Op = Opcode::Phi;
      Phi.Uses.assign(F.block(B).Preds.size(), kNoValue);
      Out.Ssa.block(B).Instrs.push_back(std::move(Phi));
    }

  RenameState S{F,
                Out.Ssa,
                Out,
                Dom,
                std::move(PhiVars),
                std::vector<std::vector<ValueId>>(F.numValues()),
                std::vector<unsigned>(F.numValues(), 0)};
  renameBlock(S, F.entry());

#ifndef NDEBUG
  std::string VerifyError;
  if (!verifyFunction(Out.Ssa, /*ExpectSsa=*/true, &VerifyError)) {
    std::fprintf(stderr, "convertToSsa produced invalid SSA: %s\n%s\n",
                 VerifyError.c_str(), Out.Ssa.toString().c_str());
    layraFatalError("SSA construction produced invalid SSA");
  }
#endif
  return Out;
}
