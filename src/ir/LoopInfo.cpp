//===- ir/LoopInfo.cpp - Natural loop detection ----------------------------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "ir/LoopInfo.h"

#include <algorithm>
#include <map>

using namespace layra;

LoopInfo::LoopInfo(const Function &F, const DominatorTree &Dom) {
  Depth.assign(F.numBlocks(), 0);

  // Collect back edges per header, then flood each loop body backwards from
  // the latches without crossing the header.
  std::map<BlockId, std::vector<BlockId>> LatchesOf;
  for (BlockId B = 0; B < F.numBlocks(); ++B) {
    if (!Dom.isReachable(B))
      continue;
    for (BlockId S : F.block(B).Succs)
      if (Dom.isReachable(S) && Dom.dominates(S, B))
        LatchesOf[S].push_back(B);
  }

  for (const auto &[Header, Latches] : LatchesOf) {
    Loop L;
    L.Header = Header;
    L.Latch = Latches.front();
    std::vector<char> InLoop(F.numBlocks(), 0);
    InLoop[Header] = 1;
    std::vector<BlockId> Work;
    for (BlockId Latch : Latches)
      if (!InLoop[Latch]) {
        InLoop[Latch] = 1;
        Work.push_back(Latch);
      }
    while (!Work.empty()) {
      BlockId B = Work.back();
      Work.pop_back();
      for (BlockId P : F.block(B).Preds)
        if (Dom.isReachable(P) && !InLoop[P]) {
          InLoop[P] = 1;
          Work.push_back(P);
        }
    }
    for (BlockId B = 0; B < F.numBlocks(); ++B)
      if (InLoop[B]) {
        L.Body.push_back(B);
        ++Depth[B];
      }
    Loops.push_back(std::move(L));
  }
}

void LoopInfo::annotate(Function &F, Weight FreqBase,
                        unsigned MaxDepth) const {
  for (BlockId B = 0; B < F.numBlocks(); ++B) {
    BasicBlock &BB = F.block(B);
    BB.LoopDepth = Depth[B];
    Weight Freq = 1;
    for (unsigned D = 0; D < std::min(Depth[B], MaxDepth); ++D)
      Freq *= FreqBase;
    BB.Frequency = Freq;
  }
}
