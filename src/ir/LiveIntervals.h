//===- ir/LiveIntervals.h - Linearized live intervals -----------*- C++ -*-===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Flattened live intervals over a linearized block layout -- the program
/// representation linear-scan allocators consume (Poletto & Sarkar; the
/// JikesRVM allocator of the paper's §6.2 baselines).  Lifetime holes are
/// deliberately not modelled: classic linear scan conservatively treats an
/// interval as occupied from first to last live point, which is part of why
/// it trails graph-based allocators in the paper's Figure 14.
///
//===----------------------------------------------------------------------===//

#ifndef LAYRA_IR_LIVEINTERVALS_H
#define LAYRA_IR_LIVEINTERVALS_H

#include "ir/Liveness.h"
#include "ir/Program.h"

#include <vector>

namespace layra {

/// One flattened live interval [Start, End] (inclusive, in program points).
struct LiveInterval {
  ValueId V = kNoValue;
  unsigned Start = 0;
  unsigned End = 0;
  Weight Cost = 0;

  bool overlaps(const LiveInterval &Other) const {
    return Start <= Other.End && Other.Start <= End;
  }
};

/// Live intervals of every value of \p F, in increasing Start order.
/// Program points: block \p B occupies points
/// [BlockStart[B], BlockStart[B] + #instrs], point 0 of a block being the
/// block boundary (phi defs live there) and point i+1 following
/// instruction i.  Values that are never live produce no interval.
struct LiveIntervalTable {
  std::vector<LiveInterval> Intervals;
  std::vector<unsigned> BlockStart;
  unsigned NumPoints = 0;

  /// Maximum number of intervals covering one point.
  unsigned maxOverlap() const;
};

/// Computes flattened intervals using \p Live for boundary liveness and
/// \p Costs for interval spill weights.  Blocks are laid out in id order.
LiveIntervalTable computeLiveIntervals(const Function &F, const Liveness &Live,
                                       const std::vector<Weight> &Costs);

} // namespace layra

#endif // LAYRA_IR_LIVEINTERVALS_H
