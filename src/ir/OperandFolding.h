//===- ir/OperandFolding.h - CISC memory-operand folding --------*- C++ -*-===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Folds spill reloads into the instructions that consume them on targets
/// with memory addressing modes (paper §4.3: "On CISC architectures like
/// the x86, we also can take advantage of complex addressing modes to get
/// operands directly from memory (at most one such operand on x86)").
///
/// A reload `t = load [s]` is folded into its consumer when
///   - the consumer is the only instruction using `t`, sits later in the
///     same block, and is a plain Op or a Branch (phis read on edges,
///     stores would become memory-to-memory moves, copies would just be
///     loads again);
///   - no store to slot `s` intervenes between the load and the consumer;
///   - the consumer still has memory-operand budget
///     (TargetDesc::MaxMemOperands) left for every occurrence of `t`.
///
/// Folding deletes the load, drops `t` from the consumer's operand list and
/// records the slot in Instruction::MemUseSlots.  The reload temporary
/// disappears entirely, so register pressure can only decrease.
///
//===----------------------------------------------------------------------===//

#ifndef LAYRA_IR_OPERANDFOLDING_H
#define LAYRA_IR_OPERANDFOLDING_H

#include "ir/Program.h"
#include "ir/Target.h"

namespace layra {

/// Statistics of one folding run.
struct OperandFoldStats {
  /// Reload instructions deleted.
  unsigned LoadsFolded = 0;
  /// Static cost saved: sum over folded reloads of
  /// Frequency * (LoadCost - MemOperandCost).
  Weight CostSaved = 0;
};

/// Folds eligible reloads of \p F in place for \p Target; no-op (and zero
/// stats) when the target has no memory operands.
OperandFoldStats foldMemoryOperands(Function &F, const TargetDesc &Target);

} // namespace layra

#endif // LAYRA_IR_OPERANDFOLDING_H
