//===- ir/Interference.cpp - Interference graph construction ---------------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "ir/Interference.h"

#include "core/SolverWorkspace.h"
#include "obs/Trace.h"

#include <algorithm>
#include <unordered_set>

using namespace layra;

std::vector<Weight> layra::computeSpillCosts(const Function &F,
                                             const TargetDesc &Target) {
  PhaseSpan CostsSpan(Phase::SpillCosts);
  std::vector<Weight> Costs(F.numValues(), 0);
  for (BlockId B = 0; B < F.numBlocks(); ++B) {
    const BasicBlock &BB = F.block(B);
    for (const Instruction &I : BB.Instrs) {
      if (I.isPhi()) {
        // The def is materialised at the top of this block; each operand is
        // consumed on the incoming edge, i.e. at the predecessor's end.
        for (ValueId V : I.Defs)
          Costs[V] += Target.StoreCost * BB.Frequency;
        for (size_t P = 0; P < I.Uses.size(); ++P)
          if (I.Uses[P] != kNoValue)
            Costs[I.Uses[P]] +=
                Target.LoadCost * F.block(BB.Preds[P]).Frequency;
        continue;
      }
      for (ValueId V : I.Defs)
        Costs[V] += Target.StoreCost * BB.Frequency;
      for (ValueId V : I.Uses)
        Costs[V] += Target.LoadCost * BB.Frequency;
    }
  }
  return Costs;
}

namespace {
/// Hash for sorted vertex lists, to deduplicate point live sets.
struct LiveSetHash {
  size_t operator()(const std::vector<VertexId> &Set) const {
    uint64_t H = 0x9e3779b97f4a7c15ULL;
    for (VertexId V : Set) {
      H ^= V + 0x9e3779b97f4a7c15ULL + (H << 6) + (H >> 2);
    }
    return static_cast<size_t>(H);
  }
};
} // namespace

InterferenceInfo layra::buildInterference(const Function &F,
                                          const Liveness &Live,
                                          const std::vector<Weight> &Costs,
                                          SolverWorkspace *WS,
                                          bool CollectPointSets) {
  assert(Costs.size() == F.numValues() && "one cost per value required");
  PhaseSpan InterferenceSpan(Phase::Interference);
  WorkspaceOrLocal LocalScope(WS);
  WS = LocalScope.get();
  InterferenceInfo Info;
  for (ValueId V = 0; V < F.numValues(); ++V)
    Info.G.addVertex(Costs[V], F.valueName(V));

  // Register classes partition the values: only same-class values compete
  // for registers, so cross-class pairs never interfere and pressure is
  // tracked per class.  Single-class functions take the exact historical
  // path (MultiClass is false, SameClass is constant-true).
  const bool MultiClass = F.maxValueClass() > 0;
  Info.MaxLiveByClass.assign(F.maxValueClass() + 1, 0);
  auto SameClass = [&](ValueId A, ValueId B) {
    return !MultiClass || F.valueClass(A) == F.valueClass(B);
  };

  // With CollectPointSets off only the pressure maximum is tracked; the
  // per-point sort/hash/dedup is what the SSA fast path skips.
  std::unordered_set<std::vector<VertexId>, LiveSetHash> SeenSets;
  auto RecordPoint = [&](std::vector<VertexId> &Set) {
    if (!MultiClass) {
      Info.MaxLive = std::max(Info.MaxLive,
                              static_cast<unsigned>(Set.size()));
    } else {
      unsigned PerClass[kMaxRegClasses] = {};
      for (VertexId V : Set)
        ++PerClass[F.valueClass(V)];
      for (unsigned C = 0; C < Info.MaxLiveByClass.size(); ++C)
        Info.MaxLiveByClass[C] = std::max(Info.MaxLiveByClass[C],
                                          PerClass[C]);
    }
    if (!CollectPointSets)
      return;
    std::vector<VertexId> Sorted(Set.begin(), Set.end());
    std::sort(Sorted.begin(), Sorted.end());
    if (SeenSets.insert(Sorted).second)
      Info.PointLiveSets.push_back(std::move(Sorted));
  };

  std::vector<VertexId> &EntrySet = WS->acquireCleared(WS->Interference.Entry);
  std::vector<VertexId> &Point = WS->acquireCleared(WS->Interference.Point);
  for (BlockId B = 0; B < F.numBlocks(); ++B) {
    const BasicBlock &BB = F.block(B);

    // Block entry: everything in LiveIn (which includes phi defs) is
    // simultaneously live.  Phi defs are born here, so they interfere with
    // all other live-in values (Chaitin edges at the def point).
    EntrySet.clear();
    Live.liveIn(B).forEach([&](std::size_t Bit) {
      EntrySet.push_back(static_cast<VertexId>(Bit));
    });
    for (const Instruction &I : BB.Instrs) {
      if (!I.isPhi())
        break;
      for (ValueId D : I.Defs)
        for (VertexId X : EntrySet)
          if (X != D && SameClass(D, X))
            Info.G.addEdge(D, X);
    }
    RecordPoint(EntrySet);

    // Body: at each instruction, defs interfere with everything live right
    // after it (and with each other).
    Live.walkBlockBackward(F, B, [&](unsigned I, const BitVector &LiveAfter) {
      const Instruction &Instr = BB.Instrs[I];
      Point.clear();
      LiveAfter.forEach([&](std::size_t Bit) {
        Point.push_back(static_cast<VertexId>(Bit));
      });
      for (ValueId D : Instr.Defs) {
        for (VertexId X : Point)
          if (X != D && SameClass(D, X))
            Info.G.addEdge(D, X);
        for (ValueId D2 : Instr.Defs)
          if (D2 != D && SameClass(D, D2))
            Info.G.addEdge(D, D2);
        // A dead def still occupies a register at its definition point.
        if (!LiveAfter.test(D))
          Point.push_back(D);
      }
      RecordPoint(Point);

      unsigned Operands =
          static_cast<unsigned>(Instr.Defs.size() + Instr.Uses.size());
      Info.MinRegisters = std::max(Info.MinRegisters, Operands);
    });
  }
  if (!MultiClass)
    Info.MaxLiveByClass[0] = Info.MaxLive;
  else
    for (unsigned PerClass : Info.MaxLiveByClass)
      Info.MaxLive = std::max(Info.MaxLive, PerClass);
  return Info;
}
