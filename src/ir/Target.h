//===- ir/Target.h - Target machine descriptors ------------------*- C++ -*-===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal target descriptions.  The paper evaluates on the STMicro ST231
/// (4-issue VLIW) and the ARM Cortex-A8 (ARMv7); hardware enters the
/// experiment through (a) the register budgets swept in the harness, (b)
/// the relative cost of spill loads/stores in the cost model, and (c) the
/// partition of values into *register classes*.  Real machines do not have
/// one uniform register file: ARMv7 splits general-purpose registers from
/// the VFP/NEON file, the ST231 keeps branch conditions in dedicated branch
/// registers.  A TargetDesc therefore carries a small table of named
/// classes, each with its own architectural register count; values carry a
/// class id (ir/Program.h) and only values of the same class ever compete
/// for the same registers.  Every pre-existing target is a one-class table,
/// which keeps the whole single-file pipeline bit-identical.
///
//===----------------------------------------------------------------------===//

#ifndef LAYRA_IR_TARGET_H
#define LAYRA_IR_TARGET_H

#include "graph/Graph.h"       // for Weight
#include "support/ParseUtil.h" // for ClassRegOverride

#include <string>
#include <vector>

namespace layra {

/// Identifier of a register class: an index into TargetDesc::Classes.
/// Class 0 is the default class every value belongs to unless annotated.
using RegClassId = unsigned;

/// Upper bound on classes per target.  Small on purpose: real ISAs have a
/// handful of files (GPR, FP/SIMD, predicates/branch), and a fixed bound
/// keeps TargetDesc a constexpr literal type.
inline constexpr unsigned kMaxRegClasses = 4;

/// One register class: a named file with an architectural register count.
struct RegClass {
  const char *Name = nullptr;
  unsigned NumRegisters = 0;
};

/// Cost/geometry parameters of a target machine.
struct TargetDesc {
  const char *Name;
  /// Architectural register count of class 0 (upper bound for register
  /// sweeps).  Kept equal to Classes[0].NumRegisters; the scalar survives
  /// because "sweep the default file" is the common case in every CLI.
  unsigned NumRegisters;
  /// Cost charged per spill *load* executed once (relative units).
  Weight LoadCost;
  /// Cost charged per spill *store* executed once.
  Weight StoreCost;
  /// Memory operands a single instruction may read directly (paper §4.3:
  /// "at most one such operand on x86"); 0 on RISC targets.
  unsigned MaxMemOperands = 0;
  /// Cost charged per folded memory operand executed once; meaningful only
  /// when MaxMemOperands > 0 and normally below LoadCost (the access rides
  /// on the consuming instruction instead of occupying an issue slot).
  Weight MemOperandCost = 0;
  /// Register-class table.  Classes[0] is the default class; NumClasses is
  /// at least 1 for every target defined here.
  RegClass Classes[kMaxRegClasses] = {};
  unsigned NumClasses = 1;

  unsigned numClasses() const { return NumClasses; }

  /// Class descriptor of \p C (default class when the table was left empty
  /// by an aggregate initializer that predates class tables).
  RegClass regClass(RegClassId C) const {
    if (C == 0 && Classes[0].Name == nullptr)
      return RegClass{"gpr", NumRegisters};
    return Classes[C];
  }

  /// Index of the class named \p Name; -1 when the target has no such
  /// class.
  int classIdByName(const std::string &Name) const {
    for (unsigned C = 0; C < NumClasses; ++C)
      if (Name == regClass(C).Name)
        return static_cast<int>(C);
    return -1;
  }
};

/// STMicroelectronics ST231 VLIW: 64 GPRs; loads have a 3-cycle exposed
/// latency while stores are fire-and-forget, so reloads dominate spill cost.
inline constexpr TargetDesc ST231{"st231",
                                  64,
                                  /*LoadCost=*/3,
                                  /*StoreCost=*/1,
                                  /*MaxMemOperands=*/0,
                                  /*MemOperandCost=*/0,
                                  {{"gpr", 64}},
                                  1};

/// ST231 with its branch-register file modelled: 64 GPRs plus 8 one-bit
/// branch registers holding compare results.  Branch values never compete
/// with data values for a register.
inline constexpr TargetDesc ST231_BR{"st231-br",
                                     64,
                                     /*LoadCost=*/3,
                                     /*StoreCost=*/1,
                                     /*MaxMemOperands=*/0,
                                     /*MemOperandCost=*/0,
                                     {{"gpr", 64}, {"br", 8}},
                                     2};

/// ARM Cortex-A8 (ARMv7): 16 GPRs; L1 hits cost about one extra cycle on
/// the dual-issue pipeline for both directions.
inline constexpr TargetDesc ARMv7{"armv7-a8",
                                  16,
                                  /*LoadCost=*/2,
                                  /*StoreCost=*/2,
                                  /*MaxMemOperands=*/0,
                                  /*MemOperandCost=*/0,
                                  {{"gpr", 16}},
                                  1};

/// ARMv7 with the VFP register file modelled: 16 GPRs plus 32
/// single-precision VFP registers.  Floating-point temporaries live in
/// their own file and spill independently of the integer pressure.
inline constexpr TargetDesc ARMv7_VFP{"armv7-vfp",
                                      16,
                                      /*LoadCost=*/2,
                                      /*StoreCost=*/2,
                                      /*MaxMemOperands=*/0,
                                      /*MemOperandCost=*/0,
                                      {{"gpr", 16}, {"vfp", 32}},
                                      2};

/// An x86-64-like CISC: 16 GPRs and complex addressing modes that let one
/// operand per instruction come straight from memory (paper §4.3), at a
/// cost below a standalone reload.
inline constexpr TargetDesc X86_64{"x86-64",
                                   16,
                                   /*LoadCost=*/3,
                                   /*StoreCost=*/2,
                                   /*MaxMemOperands=*/1,
                                   /*MemOperandCost=*/1,
                                   {{"gpr", 16}},
                                   1};

/// Every target known to the front ends, in presentation order.  The single
/// registry behind targetByName() and the `--list-targets` output of
/// layra-bench, layra-serve and layra_alloc_tool, so the three CLIs and the
/// wire protocol cannot drift apart on which targets exist.
inline const std::vector<const TargetDesc *> &knownTargets() {
  static const std::vector<const TargetDesc *> Targets{
      &ST231, &ST231_BR, &ARMv7, &ARMv7_VFP, &X86_64};
  return Targets;
}

/// Name -> target lookup shared by every user-facing front end (the CLIs
/// and the allocation service), including the accepted alias spellings;
/// nullptr for unknown names.
inline const TargetDesc *targetByName(const std::string &Name) {
  for (const TargetDesc *T : knownTargets())
    if (Name == T->Name)
      return T;
  if (Name == "armv7")
    return &ARMv7;
  if (Name == "x86")
    return &X86_64;
  return nullptr;
}

/// Renders the shared `--list-targets` table: one line per target with its
/// class table and cost model.  All three CLIs print exactly this string.
inline std::string formatTargetList() {
  std::string Out;
  for (const TargetDesc *T : knownTargets()) {
    std::string Line = T->Name;
    Line.append(Line.size() < 12 ? 12 - Line.size() : 1, ' ');
    Line += "classes:";
    for (unsigned C = 0; C < T->numClasses(); ++C) {
      RegClass RC = T->regClass(C);
      Line += " ";
      Line += RC.Name;
      Line += ":" + std::to_string(RC.NumRegisters);
    }
    Line += "  load=" + std::to_string(T->LoadCost) +
            " store=" + std::to_string(T->StoreCost);
    if (T->MaxMemOperands > 0)
      Line += " mem-operands=" + std::to_string(T->MaxMemOperands) +
              " mem-cost=" + std::to_string(T->MemOperandCost);
    Out += Line + "\n";
  }
  return Out;
}

/// Resolves the per-class register budgets of one job: class 0 gets
/// \p Class0Regs (the swept `--regs` value), every other class its
/// architectural count, and \p Overrides replace individual classes by
/// name (class 0 included).  Returns an empty vector and sets \p Error
/// when an override names a class the target does not have.
inline std::vector<unsigned>
resolveClassBudgets(const TargetDesc &Target, unsigned Class0Regs,
                    const std::vector<ClassRegOverride> &Overrides,
                    std::string *Error = nullptr) {
  std::vector<unsigned> Budgets(Target.numClasses());
  Budgets[0] = Class0Regs;
  for (unsigned C = 1; C < Target.numClasses(); ++C)
    Budgets[C] = Target.regClass(C).NumRegisters;
  for (const ClassRegOverride &O : Overrides) {
    int C = Target.classIdByName(O.Class);
    if (C < 0) {
      if (Error)
        *Error = "target '" + std::string(Target.Name) +
                 "' has no register class '" + O.Class + "'";
      return {};
    }
    Budgets[static_cast<unsigned>(C)] = O.Regs;
  }
  return Budgets;
}

} // namespace layra

#endif // LAYRA_IR_TARGET_H
