//===- ir/Target.h - Target machine descriptors ------------------*- C++ -*-===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal target descriptions.  The paper evaluates on the STMicro ST231
/// (4-issue VLIW) and the ARM Cortex-A8 (ARMv7); hardware enters the
/// experiment only through (a) the register count swept in the harness and
/// (b) the relative cost of spill loads/stores in the cost model, so a
/// target here is exactly those parameters.
///
//===----------------------------------------------------------------------===//

#ifndef LAYRA_IR_TARGET_H
#define LAYRA_IR_TARGET_H

#include "graph/Graph.h" // for Weight

#include <string>

namespace layra {

/// Cost/geometry parameters of a target machine.
struct TargetDesc {
  const char *Name;
  /// Architectural number of general-purpose registers (upper bound for
  /// register-count sweeps).
  unsigned NumRegisters;
  /// Cost charged per spill *load* executed once (relative units).
  Weight LoadCost;
  /// Cost charged per spill *store* executed once.
  Weight StoreCost;
  /// Memory operands a single instruction may read directly (paper §4.3:
  /// "at most one such operand on x86"); 0 on RISC targets.
  unsigned MaxMemOperands = 0;
  /// Cost charged per folded memory operand executed once; meaningful only
  /// when MaxMemOperands > 0 and normally below LoadCost (the access rides
  /// on the consuming instruction instead of occupying an issue slot).
  Weight MemOperandCost = 0;
};

/// STMicroelectronics ST231 VLIW: 64 GPRs; loads have a 3-cycle exposed
/// latency while stores are fire-and-forget, so reloads dominate spill cost.
inline constexpr TargetDesc ST231{"st231", 64, /*LoadCost=*/3,
                                  /*StoreCost=*/1};

/// ARM Cortex-A8 (ARMv7): 16 GPRs; L1 hits cost about one extra cycle on
/// the dual-issue pipeline for both directions.
inline constexpr TargetDesc ARMv7{"armv7-a8", 16, /*LoadCost=*/2,
                                  /*StoreCost=*/2};

/// An x86-64-like CISC: 16 GPRs and complex addressing modes that let one
/// operand per instruction come straight from memory (paper §4.3), at a
/// cost below a standalone reload.
inline constexpr TargetDesc X86_64{"x86-64", 16, /*LoadCost=*/3,
                                   /*StoreCost=*/2, /*MaxMemOperands=*/1,
                                   /*MemOperandCost=*/1};

/// Name -> target lookup shared by every user-facing front end (the CLIs
/// and the allocation service), including the accepted alias spellings;
/// nullptr for unknown names.  One function so the tools and the wire
/// protocol can never drift apart on which names they accept.
inline const TargetDesc *targetByName(const std::string &Name) {
  if (Name == "st231")
    return &ST231;
  if (Name == "armv7" || Name == "armv7-a8")
    return &ARMv7;
  if (Name == "x86-64" || Name == "x86")
    return &X86_64;
  return nullptr;
}

} // namespace layra

#endif // LAYRA_IR_TARGET_H
