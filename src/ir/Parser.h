//===- ir/Parser.h - Textual IR parser ---------------------------*- C++ -*-===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses the textual form produced by Function::toString(), so programs
/// can be written by hand, stored in files and fed to the allocators (see
/// examples/layra_alloc_tool.cpp):
///
/// \code
///   function scale {
///   entry:  ; depth=0 freq=1
///     %n = op
///     %acc = op %n
///     br %acc
///     ; succs=loop,exit
///   loop:  ; depth=1 freq=10 preds=entry,loop
///     %i = phi %acc, %i2
///     %i2 = op %i
///     br %i2
///     ; succs=loop,exit
///   exit:  ; depth=0 freq=1 preds=entry,loop
///     ret
///   }
/// \endcode
///
/// Grammar notes:
///  - blocks appear as `name:` with an optional `; depth=D freq=W
///    preds=a,b` annotation; `preds` order is significant (it is the phi
///    operand order) and must be consistent with the `succs` lists;
///  - instructions are `%d1, %d2 = opcode %u1, %u2 [slot N] [mem slot M]`
///    with every part optional except the opcode; `<undef>` is the
///    placeholder phi operand;
///  - `; succs=...` lines and all other `;` comments are annotations; the
///    CFG is rebuilt from preds/succs, and an interleaving of edge
///    insertions reproducing *both* orders is computed (a parse error is
///    reported when none exists);
///  - value names are rebuilt from first textual appearance.  Anonymous
///    values (printed `%7`) get fresh ids, so a parse-print round trip is
///    stable from the second print onward rather than byte-identical to
///    arbitrary input.
///
//===----------------------------------------------------------------------===//

#ifndef LAYRA_IR_PARSER_H
#define LAYRA_IR_PARSER_H

#include "ir/Program.h"

#include <string>

namespace layra {

/// Outcome of parseFunction().
struct ParsedFunction {
  /// True when parsing succeeded; the other fields are meaningful only
  /// then (on failure, Error/Line describe the first problem).
  bool Ok = false;
  Function F{"<parse-error>"};
  std::string Error;
  /// 1-based line of the error.
  unsigned Line = 0;
};

/// Parses one function in Function::toString() syntax from \p Text.
///
/// The parser checks syntax and referential consistency (every pred has a
/// matching succ and vice versa); run verifyFunction() afterwards for the
/// full structural/SSA invariants.
ParsedFunction parseFunction(const std::string &Text);

} // namespace layra

#endif // LAYRA_IR_PARSER_H
