//===- ir/Program.cpp - Mini compiler IR -----------------------------------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "ir/Program.h"

#include "ir/Dominators.h"
#include "support/Compiler.h"

#include <algorithm>

using namespace layra;

const char *layra::opcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::Op:
    return "op";
  case Opcode::Copy:
    return "copy";
  case Opcode::Phi:
    return "phi";
  case Opcode::Load:
    return "load";
  case Opcode::Store:
    return "store";
  case Opcode::Branch:
    return "br";
  case Opcode::Return:
    return "ret";
  }
  LAYRA_UNREACHABLE("unknown opcode");
}

BlockId Function::makeBlock(std::string Name) {
  BlockId Id = numBlocks();
  Blocks.emplace_back();
  Blocks.back().Name = Name.empty() ? "bb" + std::to_string(Id)
                                    : std::move(Name);
  return Id;
}

ValueId Function::makeValue(std::string Name, RegClassId Class) {
  ValueId Id = NumValues++;
  if (!Name.empty()) {
    ValueNames.resize(NumValues);
    ValueNames[Id] = std::move(Name);
  }
  if (Class != 0)
    setValueClass(Id, Class);
  return Id;
}

void Function::setValueClass(ValueId V, RegClassId Class) {
  assert(V < NumValues && "value id out of range");
  assert(Class < kMaxRegClasses && "register class id out of range");
  if (ValueClasses.size() <= V) {
    if (Class == 0)
      return; // Sparse default.
    ValueClasses.resize(V + 1, 0);
  }
  ValueClasses[V] = Class;
  MaxClass = std::max(MaxClass, Class);
}

void Function::addEdge(BlockId From, BlockId To) {
  assert(From < numBlocks() && To < numBlocks() && "block id out of range");
  BasicBlock &FromBlock = Blocks[From];
  BasicBlock &ToBlock = Blocks[To];
  assert(std::find(FromBlock.Succs.begin(), FromBlock.Succs.end(), To) ==
             FromBlock.Succs.end() &&
         "duplicate CFG edge");
  FromBlock.Succs.push_back(To);
  ToBlock.Preds.push_back(From);
  for (Instruction &I : ToBlock.Instrs)
    if (I.isPhi())
      I.Uses.push_back(kNoValue);
}

const std::string &Function::valueName(ValueId V) const {
  assert(V < NumValues && "value id out of range");
  static const std::string Empty;
  return V < ValueNames.size() ? ValueNames[V] : Empty;
}

void Function::setValueName(ValueId V, std::string Name) {
  assert(V < NumValues && "value id out of range");
  if (ValueNames.size() <= V)
    ValueNames.resize(V + 1);
  ValueNames[V] = std::move(Name);
}

/// Formats a value as its name or "%<id>".
static std::string formatValue(const Function &F, ValueId V) {
  if (V == kNoValue)
    return "<undef>";
  const std::string &Name = F.valueName(V);
  return Name.empty() ? "%" + std::to_string(V) : "%" + Name;
}

std::string Function::toString() const {
  std::string Out = "function " + FuncName + " {\n";
  for (BlockId B = 0; B < numBlocks(); ++B) {
    const BasicBlock &BB = Blocks[B];
    Out += BB.Name + ":  ; depth=" + std::to_string(BB.LoopDepth) +
           " freq=" + std::to_string(BB.Frequency);
    if (!BB.Preds.empty()) {
      Out += " preds=";
      for (size_t I = 0; I < BB.Preds.size(); ++I)
        Out += (I ? "," : "") + Blocks[BB.Preds[I]].Name;
    }
    Out += "\n";
    for (const Instruction &I : BB.Instrs) {
      Out += "  ";
      for (size_t D = 0; D < I.Defs.size(); ++D) {
        Out += (D ? ", " : "") + formatValue(*this, I.Defs[D]);
        // Non-default register classes round-trip through a definition
        // suffix; class-0 defs print exactly as they always did.
        if (valueClass(I.Defs[D]) != 0)
          Out += ":$" + std::to_string(valueClass(I.Defs[D]));
      }
      if (!I.Defs.empty())
        Out += " = ";
      Out += opcodeName(I.Op);
      for (size_t U = 0; U < I.Uses.size(); ++U)
        Out += (U ? "," : "") + std::string(" ") + formatValue(*this, I.Uses[U]);
      if (I.SpillSlot >= 0)
        Out += " [slot " + std::to_string(I.SpillSlot) + "]";
      for (int Slot : I.MemUseSlots)
        Out += " [mem slot " + std::to_string(Slot) + "]";
      Out += "\n";
    }
    if (!BB.Succs.empty()) {
      Out += "  ; succs=";
      for (size_t I = 0; I < BB.Succs.size(); ++I)
        Out += (I ? "," : "") + Blocks[BB.Succs[I]].Name;
      Out += "\n";
    }
  }
  Out += "}\n";
  return Out;
}

namespace {
/// Collects verification state so the checks below stay readable.
struct VerifyContext {
  const Function &F;
  std::string *Error;

  bool fail(const std::string &Message) const {
    if (Error)
      *Error = Message;
    return false;
  }
};
} // namespace

static bool checkStructure(const VerifyContext &Ctx) {
  const Function &F = Ctx.F;
  if (F.numBlocks() == 0)
    return Ctx.fail("function has no blocks");
  for (BlockId B = 0; B < F.numBlocks(); ++B) {
    const BasicBlock &BB = F.block(B);
    // Pred/succ symmetry.
    for (BlockId S : BB.Succs) {
      if (S >= F.numBlocks())
        return Ctx.fail("successor id out of range in " + BB.Name);
      const std::vector<BlockId> &Preds = F.block(S).Preds;
      if (std::count(Preds.begin(), Preds.end(), B) != 1)
        return Ctx.fail("asymmetric CFG edge " + BB.Name + " -> " +
                        F.block(S).Name);
    }
    for (BlockId P : BB.Preds) {
      if (P >= F.numBlocks())
        return Ctx.fail("predecessor id out of range in " + BB.Name);
      const std::vector<BlockId> &Succs = F.block(P).Succs;
      if (std::count(Succs.begin(), Succs.end(), B) != 1)
        return Ctx.fail("asymmetric CFG edge into " + BB.Name);
    }
    // Instruction layout: phis, body, one terminator.
    if (BB.Instrs.empty())
      return Ctx.fail("block " + BB.Name + " is empty (needs a terminator)");
    bool SeenNonPhi = false;
    for (size_t I = 0; I < BB.Instrs.size(); ++I) {
      const Instruction &Instr = BB.Instrs[I];
      if (Instr.isPhi()) {
        if (SeenNonPhi)
          return Ctx.fail("phi after non-phi in " + BB.Name);
        if (Instr.Uses.size() != BB.Preds.size())
          return Ctx.fail("phi operand count mismatch in " + BB.Name);
        if (Instr.Defs.size() != 1)
          return Ctx.fail("phi must define exactly one value in " + BB.Name);
      } else {
        SeenNonPhi = true;
      }
      bool IsLast = I + 1 == BB.Instrs.size();
      if (Instr.isTerminator() != IsLast)
        return Ctx.fail("terminator placement wrong in " + BB.Name);
      for (ValueId V : Instr.Defs)
        if (V >= F.numValues())
          return Ctx.fail("def id out of range in " + BB.Name);
      for (ValueId V : Instr.Uses)
        if (V != kNoValue && V >= F.numValues())
          return Ctx.fail("use id out of range in " + BB.Name);
      if (!Instr.isPhi())
        for (ValueId V : Instr.Uses)
          if (V == kNoValue)
            return Ctx.fail("undef operand outside phi in " + BB.Name);
      if (!Instr.MemUseSlots.empty()) {
        if (Instr.isPhi() || Instr.Op == Opcode::Load ||
            Instr.Op == Opcode::Store)
          return Ctx.fail("memory operand on phi/load/store in " + BB.Name);
        for (int Slot : Instr.MemUseSlots)
          if (Slot < 0)
            return Ctx.fail("negative memory-operand slot in " + BB.Name);
      }
    }
    if (BB.Succs.empty() && BB.Instrs.back().Op != Opcode::Return)
      return Ctx.fail("block " + BB.Name + " falls off the function");
  }
  if (!F.block(F.entry()).Preds.empty())
    return Ctx.fail("entry block has predecessors");
  return true;
}

static bool checkSsa(const VerifyContext &Ctx) {
  const Function &F = Ctx.F;
  // Single def per value.
  std::vector<BlockId> DefBlock(F.numValues(), kNoBlock);
  std::vector<unsigned> DefIndex(F.numValues(), 0);
  for (BlockId B = 0; B < F.numBlocks(); ++B) {
    const BasicBlock &BB = F.block(B);
    for (unsigned I = 0; I < BB.Instrs.size(); ++I)
      for (ValueId V : BB.Instrs[I].Defs) {
        if (DefBlock[V] != kNoBlock)
          return Ctx.fail("value " + formatValue(F, V) + " defined twice");
        DefBlock[V] = B;
        DefIndex[V] = I;
      }
  }

  DominatorTree Dom(F);
  auto DefReaches = [&](ValueId V, BlockId UseBlock,
                        unsigned UseIndex) -> bool {
    if (DefBlock[V] == kNoBlock)
      return false;
    if (DefBlock[V] == UseBlock)
      return DefIndex[V] < UseIndex;
    return Dom.dominates(DefBlock[V], UseBlock);
  };

  for (BlockId B = 0; B < F.numBlocks(); ++B) {
    if (!Dom.isReachable(B))
      continue;
    const BasicBlock &BB = F.block(B);
    for (unsigned I = 0; I < BB.Instrs.size(); ++I) {
      const Instruction &Instr = BB.Instrs[I];
      if (Instr.isPhi()) {
        for (size_t P = 0; P < Instr.Uses.size(); ++P) {
          ValueId V = Instr.Uses[P];
          if (V == kNoValue)
            continue;
          BlockId Pred = BB.Preds[P];
          if (!Dom.isReachable(Pred))
            continue;
          // The def must reach the end of the predecessor.
          unsigned PredEnd =
              static_cast<unsigned>(F.block(Pred).Instrs.size());
          if (!DefReaches(V, Pred, PredEnd))
            return Ctx.fail("phi operand " + formatValue(F, V) +
                            " does not dominate edge into " + BB.Name);
        }
        continue;
      }
      for (ValueId V : Instr.Uses)
        if (!DefReaches(V, B, I))
          return Ctx.fail("use of " + formatValue(F, V) +
                          " not dominated by its def in " + BB.Name);
    }
  }
  return true;
}

bool layra::verifyFunction(const Function &F, bool ExpectSsa,
                           std::string *Error) {
  VerifyContext Ctx{F, Error};
  if (!checkStructure(Ctx))
    return false;
  if (ExpectSsa && !checkSsa(Ctx))
    return false;
  return true;
}
