//===- ir/LiveIntervals.cpp - Linearized live intervals --------------------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "ir/LiveIntervals.h"

#include <algorithm>

using namespace layra;

unsigned LiveIntervalTable::maxOverlap() const {
  // Sweep the start/end events.
  std::vector<std::pair<unsigned, int>> Events;
  Events.reserve(Intervals.size() * 2);
  for (const LiveInterval &I : Intervals) {
    Events.push_back({I.Start, +1});
    Events.push_back({I.End + 1, -1});
  }
  std::sort(Events.begin(), Events.end());
  unsigned Max = 0;
  int Current = 0;
  for (auto &[Point, Delta] : Events) {
    Current += Delta;
    Max = std::max(Max, static_cast<unsigned>(std::max(0, Current)));
  }
  return Max;
}

LiveIntervalTable layra::computeLiveIntervals(const Function &F,
                                              const Liveness &Live,
                                              const std::vector<Weight> &Costs) {
  assert(Costs.size() == F.numValues() && "one cost per value required");
  LiveIntervalTable Table;
  Table.BlockStart.resize(F.numBlocks());
  unsigned Point = 0;
  for (BlockId B = 0; B < F.numBlocks(); ++B) {
    Table.BlockStart[B] = Point;
    Point += static_cast<unsigned>(F.block(B).Instrs.size()) + 1;
  }
  Table.NumPoints = Point;

  constexpr unsigned kUnset = ~0u;
  std::vector<unsigned> First(F.numValues(), kUnset);
  std::vector<unsigned> Last(F.numValues(), 0);
  auto Touch = [&](ValueId V, unsigned P) {
    if (First[V] == kUnset)
      First[V] = P;
    else
      First[V] = std::min(First[V], P);
    Last[V] = std::max(Last[V], P);
  };

  for (BlockId B = 0; B < F.numBlocks(); ++B) {
    const BasicBlock &BB = F.block(B);
    unsigned Start = Table.BlockStart[B];
    unsigned End = Start + static_cast<unsigned>(BB.Instrs.size());
    // Boundary liveness pins values crossing the block.
    Live.liveIn(B).forEach([&](size_t V) {
      Touch(static_cast<ValueId>(V), Start);
    });
    Live.liveOut(B).forEach([&](size_t V) {
      Touch(static_cast<ValueId>(V), End);
    });
    // Local defs/uses pin interior endpoints.
    for (unsigned I = 0; I < BB.Instrs.size(); ++I) {
      const Instruction &Instr = BB.Instrs[I];
      unsigned P = Instr.isPhi() ? Start : Start + I + 1;
      for (ValueId V : Instr.Defs)
        Touch(V, P);
      for (size_t U = 0; U < Instr.Uses.size(); ++U) {
        ValueId V = Instr.Uses[U];
        if (V == kNoValue)
          continue;
        if (!Instr.isPhi()) {
          Touch(V, P);
          continue;
        }
        // Phi operands are consumed at the end of the predecessor block.
        BlockId Pred = BB.Preds[U];
        Touch(V, Table.BlockStart[Pred] +
                     static_cast<unsigned>(F.block(Pred).Instrs.size()));
      }
    }
  }

  for (ValueId V = 0; V < F.numValues(); ++V) {
    if (First[V] == kUnset)
      continue;
    LiveInterval LI;
    LI.V = V;
    LI.Start = First[V];
    LI.End = Last[V];
    LI.Cost = Costs[V];
    Table.Intervals.push_back(LI);
  }
  std::sort(Table.Intervals.begin(), Table.Intervals.end(),
            [](const LiveInterval &A, const LiveInterval &B) {
              if (A.Start != B.Start)
                return A.Start < B.Start;
              if (A.End != B.End)
                return A.End < B.End;
              return A.V < B.V;
            });
  return Table;
}
