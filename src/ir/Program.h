//===- ir/Program.h - Mini compiler IR ---------------------------*- C++ -*-===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A miniature register-allocation-oriented compiler IR.  The paper evaluates
/// on interference graphs dumped from Open64 (SSA, chordal) and from the
/// JikesRVM JIT (non-SSA, general); this IR is the substrate that produces
/// both kinds of graphs from (synthetic) programs: a CFG of basic blocks
/// whose instructions define and use virtual registers, with optional phi
/// instructions when the function is in SSA form.
///
//===----------------------------------------------------------------------===//

#ifndef LAYRA_IR_PROGRAM_H
#define LAYRA_IR_PROGRAM_H

#include "graph/Graph.h" // for Weight
#include "ir/Target.h"   // for RegClassId

#include <cassert>
#include <string>
#include <vector>

namespace layra {

/// A virtual register (the paper's "temporary variable").
using ValueId = unsigned;
inline constexpr ValueId kNoValue = ~0u;

/// Block identifier (index into Function::Blocks).
using BlockId = unsigned;
inline constexpr BlockId kNoBlock = ~0u;

/// Instruction kinds.  The IR is deliberately opcode-poor: register
/// allocation only cares about def/use structure, control flow and access
/// frequencies.
enum class Opcode {
  Op,     ///< Generic computation: defines Defs from Uses.
  Copy,   ///< Register-to-register move (coalescing candidate).
  Phi,    ///< SSA phi; Uses[i] flows in from predecessor i.
  Load,   ///< Reload of a spilled value from its spill slot.
  Store,  ///< Spill store of a value to its spill slot.
  Branch, ///< Terminator; uses may encode a condition.
  Return, ///< Terminator; uses encode returned values.
};

/// Returns a short mnemonic for \p Op ("op", "phi", ...).
const char *opcodeName(Opcode Op);

/// One IR instruction.
struct Instruction {
  Opcode Op = Opcode::Op;
  /// Values defined here (0 or 1 for all opcodes in practice).
  std::vector<ValueId> Defs;
  /// Values read here.  For Phi, Uses.size() equals the predecessor count of
  /// the parent block and Uses[i] is the value flowing from predecessor i.
  std::vector<ValueId> Uses;
  /// Spill slot for Load/Store; -1 otherwise.
  int SpillSlot = -1;
  /// Spill slots read directly as memory operands (CISC addressing modes,
  /// paper §4.3: "get operands directly from memory").  Produced by
  /// foldMemoryOperands(); at most TargetDesc::MaxMemOperands entries.
  /// Only meaningful on Op/Copy/Branch/Return instructions.
  std::vector<int> MemUseSlots;

  bool isTerminator() const {
    return Op == Opcode::Branch || Op == Opcode::Return;
  }
  bool isPhi() const { return Op == Opcode::Phi; }
};

/// A basic block: phis first, then ordinary instructions, then exactly one
/// terminator (enforced by the verifier, not the type).
struct BasicBlock {
  std::string Name;
  std::vector<Instruction> Instrs;
  std::vector<BlockId> Preds;
  std::vector<BlockId> Succs;
  /// Loop nesting depth; 0 outside any loop.  Filled by LoopInfo::annotate.
  unsigned LoopDepth = 0;
  /// Estimated execution frequency (the cost model multiplies access counts
  /// by this).  Defaults to 1; LoopInfo::annotate sets 10^LoopDepth.
  Weight Frequency = 1;
};

/// A function: an entry block plus a CFG.  Values are dense ids; the
/// function only records how many exist and their optional names.
class Function {
public:
  explicit Function(std::string Name = "f") : FuncName(std::move(Name)) {}

  const std::string &name() const { return FuncName; }

  /// Creates an empty block and returns its id.  The first created block is
  /// the entry block.
  BlockId makeBlock(std::string Name = {});

  /// Creates a fresh value id in register class \p Class (0, the default
  /// class, for almost all values; see ir/Target.h).
  ValueId makeValue(std::string Name = {}, RegClassId Class = 0);

  /// Adds a CFG edge and keeps Preds/Succs consistent.
  /// Phi instructions already present in \p To are extended with a
  /// kNoValue operand slot for the new predecessor.
  void addEdge(BlockId From, BlockId To);

  unsigned numBlocks() const { return static_cast<unsigned>(Blocks.size()); }
  unsigned numValues() const { return NumValues; }

  BasicBlock &block(BlockId B) {
    assert(B < Blocks.size() && "block id out of range");
    return Blocks[B];
  }
  const BasicBlock &block(BlockId B) const {
    assert(B < Blocks.size() && "block id out of range");
    return Blocks[B];
  }

  BlockId entry() const {
    assert(!Blocks.empty() && "function has no blocks");
    return 0;
  }

  const std::string &valueName(ValueId V) const;
  void setValueName(ValueId V, std::string Name);

  /// Register class of \p V.  Values default to class 0; the textual IR
  /// marks other classes with a `:$<class>` suffix at the definition.
  RegClassId valueClass(ValueId V) const {
    assert(V < NumValues && "value id out of range");
    return V < ValueClasses.size() ? ValueClasses[V] : 0;
  }
  void setValueClass(ValueId V, RegClassId Class);

  /// Largest class id any value of this function uses.  0 for functions
  /// that never left the default class -- the cheap test every layer uses
  /// to stay on the single-class fast path.
  RegClassId maxValueClass() const { return MaxClass; }

  /// All blocks, for range-for convenience.
  std::vector<BasicBlock> &blocks() { return Blocks; }
  const std::vector<BasicBlock> &blocks() const { return Blocks; }

  /// Pretty-prints the function to a string (tests and examples).
  std::string toString() const;

private:
  std::string FuncName;
  std::vector<BasicBlock> Blocks;
  std::vector<std::string> ValueNames;
  /// Sparse like ValueNames: values beyond the vector are class 0.
  std::vector<RegClassId> ValueClasses;
  RegClassId MaxClass = 0;
  unsigned NumValues = 0;
};

/// Checks that every register class \p F's values use exists on
/// \p Target.  Returns an empty string on success, otherwise one shared
/// ready-to-print message -- every front end (both CLIs and both server
/// request paths) rejects class/target mismatches through this helper, so
/// the rule and its wording cannot drift.
inline std::string checkFunctionClasses(const Function &F,
                                        const TargetDesc &Target) {
  if (F.maxValueClass() < Target.numClasses())
    return {};
  return "function '" + F.name() + "' uses register class $" +
         std::to_string(F.maxValueClass()) + " but target '" + Target.Name +
         "' has only " + std::to_string(Target.numClasses()) + " class(es)";
}

/// Verifies structural invariants of \p F:
///  - pred/succ lists are symmetric and duplicate-free;
///  - every block ends with exactly one terminator and contains none before;
///  - phis appear only at the start of a block and have one operand per
///    predecessor;
///  - all value ids are within range; no kNoValue outside phi operands.
/// \param ExpectSsa additionally checks the SSA invariants: every value has
///   exactly one def, and every def dominates all its uses (phi uses are
///   checked at the end of the corresponding predecessor).
/// \param [out] Error if non-null, receives a description of the first
///   violation found.
bool verifyFunction(const Function &F, bool ExpectSsa = false,
                    std::string *Error = nullptr);

} // namespace layra

#endif // LAYRA_IR_PROGRAM_H
