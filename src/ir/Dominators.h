//===- ir/Dominators.h - Dominator tree and frontiers -----------*- C++ -*-===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dominator tree (Cooper-Harvey-Kennedy "A Simple, Fast Dominance
/// Algorithm") and dominance frontiers.  The dominance tree is the backbone
/// of both SSA construction and the chordality of SSA interference graphs:
/// live ranges of strict-SSA values are subtrees of this tree.
///
//===----------------------------------------------------------------------===//

#ifndef LAYRA_IR_DOMINATORS_H
#define LAYRA_IR_DOMINATORS_H

#include "ir/Program.h"

#include <vector>

namespace layra {

/// Immediate-dominator tree of a function's CFG.
///
/// Unreachable blocks have no dominator information; isReachable() reports
/// them and every query asserts reachability.
class DominatorTree {
public:
  /// Builds the dominator tree of \p F.
  explicit DominatorTree(const Function &F);

  bool isReachable(BlockId B) const { return Rpo[B] != ~0u; }

  /// Immediate dominator; the entry block returns kNoBlock.
  BlockId idom(BlockId B) const {
    assert(isReachable(B) && "idom of unreachable block");
    return Idom[B];
  }

  /// True if \p A dominates \p B (reflexive).
  bool dominates(BlockId A, BlockId B) const;

  /// Children in the dominator tree.
  const std::vector<BlockId> &children(BlockId B) const {
    assert(B < Kids.size() && "block id out of range");
    return Kids[B];
  }

  /// Blocks in reverse post order (reachable blocks only).
  const std::vector<BlockId> &reversePostOrder() const { return RpoBlocks; }

  /// A preorder walk of the dominator tree starting at the entry.
  std::vector<BlockId> domTreePreorder() const;

  /// Dominance frontier of every block (computed lazily on first query).
  const std::vector<BlockId> &dominanceFrontier(BlockId B);

private:
  void computeFrontiers();

  const Function &F;
  std::vector<unsigned> Rpo;        // Block -> RPO index, ~0u if unreachable.
  std::vector<BlockId> RpoBlocks;   // RPO index -> block.
  std::vector<BlockId> Idom;        // Block -> immediate dominator.
  std::vector<std::vector<BlockId>> Kids;
  std::vector<unsigned> DfsIn, DfsOut; // Dominator-tree intervals.
  std::vector<std::vector<BlockId>> Frontiers;
  bool FrontiersComputed = false;
};

} // namespace layra

#endif // LAYRA_IR_DOMINATORS_H
