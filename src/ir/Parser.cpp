//===- ir/Parser.cpp - Textual IR parser ------------------------------------===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
//
// Implementation notes.  Parsing runs in two passes over the lines: the
// first creates every block (so preds/succs can refer forward), the second
// parses annotations and instructions.  CFG edges are inserted last: both
// the preds list of the target and the succs list of the source are
// order-significant (phi operands are positional, and round-tripping should
// be stable), so the parser computes an interleaving of addEdge() calls
// that reproduces both sequences at once -- a topological order of the
// edge-instance DAG where e1 < e2 when e1 precedes e2 in a shared source's
// succs or a shared target's preds.  An inconsistent pair of orders has a
// cycle and is reported as an error.
//
//===----------------------------------------------------------------------===//

#include "ir/Parser.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <optional>
#include <sstream>
#include <vector>

using namespace layra;

namespace {

/// Cursor over one line.
class LineCursor {
public:
  explicit LineCursor(const std::string &Line) : Text(Line) {}

  void skipSpace() {
    while (Pos < Text.size() && std::isspace(static_cast<unsigned char>(
                                    Text[Pos])))
      ++Pos;
  }

  bool atEnd() {
    skipSpace();
    return Pos >= Text.size();
  }

  bool consume(const std::string &Token) {
    skipSpace();
    if (Text.compare(Pos, Token.size(), Token) != 0)
      return false;
    Pos += Token.size();
    return true;
  }

  bool peekIs(char C) {
    skipSpace();
    return Pos < Text.size() && Text[Pos] == C;
  }

  /// Reads an identifier: [A-Za-z0-9_.#-]+.
  bool readIdent(std::string &Out) {
    skipSpace();
    size_t Start = Pos;
    while (Pos < Text.size()) {
      char C = Text[Pos];
      if (std::isalnum(static_cast<unsigned char>(C)) || C == '_' ||
          C == '.' || C == '#' || C == '-')
        ++Pos;
      else
        break;
    }
    if (Pos == Start)
      return false;
    Out = Text.substr(Start, Pos - Start);
    return true;
  }

  bool readNumber(long long &Out) {
    std::string Ident;
    size_t Save = Pos;
    if (!readIdent(Ident) || Ident.empty()) {
      Pos = Save;
      return false;
    }
    for (char C : Ident)
      if (!std::isdigit(static_cast<unsigned char>(C))) {
        Pos = Save;
        return false;
      }
    Out = std::stoll(Ident);
    return true;
  }

  std::string rest() {
    skipSpace();
    return Text.substr(Pos);
  }

private:
  const std::string &Text;
  size_t Pos = 0;
};

/// Splits a comma-separated list ("a,b,c").
std::vector<std::string> splitList(const std::string &Text) {
  std::vector<std::string> Out;
  std::string Item;
  for (char C : Text) {
    if (C == ',') {
      Out.push_back(Item);
      Item.clear();
    } else if (!std::isspace(static_cast<unsigned char>(C))) {
      Item += C;
    }
  }
  if (!Item.empty())
    Out.push_back(Item);
  return Out;
}

/// The parser state proper.
class Parser {
public:
  explicit Parser(const std::string &Text) { splitLines(Text); }

  ParsedFunction run() {
    // Edges must exist before instructions are parsed: Function::addEdge
    // extends already-present phis with fresh operand slots, which would
    // corrupt phis that were parsed with their full operand lists.
    ParsedFunction Result;
    if (!parseHeader() || !createBlocks() || !parseAnnotations() ||
        !insertEdges() || !parseInstructions()) {
      Result.Error = ErrorMessage;
      Result.Line = ErrorLine;
      return Result;
    }
    Result.Ok = true;
    Result.F = std::move(*F);
    return Result;
  }

private:
  void splitLines(const std::string &Text) {
    std::string Line;
    std::istringstream In(Text);
    while (std::getline(In, Line))
      Lines.push_back(Line);
  }

  bool fail(unsigned LineNo, const std::string &Message) {
    ErrorMessage = Message;
    ErrorLine = LineNo + 1;
    return false;
  }

  /// True for lines that carry no content (blank or pure `;` comments that
  /// are not succs annotations).
  static bool isBlank(const std::string &Line) {
    for (char C : Line)
      if (!std::isspace(static_cast<unsigned char>(C)))
        return false;
    return true;
  }

  /// A block header is `name:` possibly followed by an annotation.
  static bool isBlockHeader(const std::string &Line) {
    if (Line.empty() || std::isspace(static_cast<unsigned char>(Line[0])))
      return false;
    size_t Colon = Line.find(':');
    return Colon != std::string::npos && Colon > 0;
  }

  bool parseHeader() {
    while (First < Lines.size() && isBlank(Lines[First]))
      ++First;
    if (First >= Lines.size())
      return fail(0, "empty input: expected 'function <name> {'");
    LineCursor Cur(Lines[First]);
    std::string Name;
    if (!Cur.consume("function") || !Cur.readIdent(Name) ||
        !Cur.consume("{"))
      return fail(First, "expected 'function <name> {'");
    F.emplace(Name);
    ++First;

    Last = Lines.size();
    while (Last > First && isBlank(Lines[Last - 1]))
      --Last;
    if (Last <= First || Lines[Last - 1].find('}') == std::string::npos)
      return fail(Last ? Last - 1 : 0, "expected closing '}'");
    --Last; // Exclude the '}' line.
    return true;
  }

  bool createBlocks() {
    for (unsigned L = First; L < Last; ++L) {
      const std::string &Line = Lines[L];
      if (isBlank(Line) || !isBlockHeader(Line))
        continue;
      std::string Name = Line.substr(0, Line.find(':'));
      if (BlockOf.count(Name))
        return fail(L, "duplicate block name '" + Name + "'");
      BlockOf[Name] = F->makeBlock(Name);
    }
    if (F->numBlocks() == 0)
      return fail(First, "function has no blocks");
    return true;
  }

  /// Parses `; depth=D freq=W preds=a,b` after a block header.
  bool parseBlockAnnotation(unsigned L, const std::string &Rest,
                            BlockId Block) {
    LineCursor Cur(Rest);
    if (Cur.atEnd())
      return true;
    if (!Cur.consume(";"))
      return fail(L, "unexpected text after block header");
    long long Number;
    if (Cur.consume("depth=")) {
      if (!Cur.readNumber(Number))
        return fail(L, "bad depth annotation");
      F->block(Block).LoopDepth = static_cast<unsigned>(Number);
    }
    if (Cur.consume("freq=")) {
      if (!Cur.readNumber(Number))
        return fail(L, "bad freq annotation");
      F->block(Block).Frequency = Number;
    }
    if (Cur.consume("preds=")) {
      for (const std::string &Name : splitList(Cur.rest())) {
        auto It = BlockOf.find(Name);
        if (It == BlockOf.end())
          return fail(L, "unknown predecessor block '" + Name + "'");
        Preds[Block].push_back(It->second);
      }
    }
    return true;
  }

  /// Parses `; succs=a,b` inside a block.
  bool parseSuccsAnnotation(unsigned L, LineCursor &Cur, BlockId Block) {
    for (const std::string &Name : splitList(Cur.rest())) {
      auto It = BlockOf.find(Name);
      if (It == BlockOf.end())
        return fail(L, "unknown successor block '" + Name + "'");
      Succs[Block].push_back(It->second);
    }
    return true;
  }

  /// Maps a `%token` to a ValueId (fresh on first appearance).  All-digit
  /// tokens come from anonymous values; they are re-created anonymous.
  ValueId valueOf(const std::string &Token) {
    auto It = ValueOf.find(Token);
    if (It != ValueOf.end())
      return It->second;
    bool AllDigits = !Token.empty();
    for (char C : Token)
      AllDigits &= std::isdigit(static_cast<unsigned char>(C)) != 0;
    ValueId V = F->makeValue(AllDigits ? std::string() : Token);
    ValueOf[Token] = V;
    return V;
  }

  /// Parses a value list `%a, %b, <undef>` into \p Out.  With
  /// \p AllowClass (definition lists only) each value may carry a
  /// `:$<class>` register-class suffix.
  bool readValueList(unsigned L, LineCursor &Cur, std::vector<ValueId> &Out,
                     bool AllowClass = false) {
    while (true) {
      if (Cur.consume("<undef>")) {
        Out.push_back(kNoValue);
      } else if (Cur.consume("%")) {
        std::string Token;
        if (!Cur.readIdent(Token))
          return fail(L, "expected value name after '%'");
        ValueId V = valueOf(Token);
        Out.push_back(V);
        if (AllowClass && Cur.consume(":$")) {
          long long Class;
          if (!Cur.readNumber(Class) || Class < 0 ||
              Class >= static_cast<long long>(kMaxRegClasses))
            return fail(L, "register class suffix must be :$N with N in "
                           "[0, " +
                               std::to_string(kMaxRegClasses - 1) + "]");
          RegClassId C = static_cast<RegClassId>(Class);
          auto [It, Fresh] = ClassOf.emplace(V, C);
          if (!Fresh && It->second != C)
            return fail(L, "value %" + Token +
                               " redefined with a different register class");
          F->setValueClass(V, C);
        }
      } else {
        return fail(L, "expected value operand");
      }
      if (!Cur.consume(","))
        return true;
    }
  }

  static bool opcodeFromName(const std::string &Name, Opcode &Out) {
    static const std::pair<const char *, Opcode> Table[] = {
        {"op", Opcode::Op},       {"copy", Opcode::Copy},
        {"phi", Opcode::Phi},     {"load", Opcode::Load},
        {"store", Opcode::Store}, {"br", Opcode::Branch},
        {"ret", Opcode::Return}};
    for (const auto &[Text, Op] : Table)
      if (Name == Text) {
        Out = Op;
        return true;
      }
    return false;
  }

  bool parseInstruction(unsigned L, BlockId Block) {
    LineCursor Cur(Lines[L]);
    Instruction I;

    // Defs: present when an '=' appears before the opcode.  Cheap test:
    // parse a value list, then look for '='.
    if (Cur.peekIs('%')) {
      if (!readValueList(L, Cur, I.Defs, /*AllowClass=*/true))
        return false;
      if (!Cur.consume("="))
        return fail(L, "expected '=' after definition list");
      for (ValueId V : I.Defs)
        if (V == kNoValue)
          return fail(L, "<undef> cannot be defined");
    }

    std::string Name;
    if (!Cur.readIdent(Name) || !opcodeFromName(Name, I.Op))
      return fail(L, "unknown opcode '" + Name + "'");

    if (Cur.peekIs('%') || Cur.peekIs('<'))
      if (!readValueList(L, Cur, I.Uses))
        return false;

    long long Slot;
    if (Cur.consume("[slot")) {
      if (!Cur.readNumber(Slot) || !Cur.consume("]"))
        return fail(L, "bad [slot N] annotation");
      I.SpillSlot = static_cast<int>(Slot);
    }
    while (Cur.consume("[mem slot")) {
      if (!Cur.readNumber(Slot) || !Cur.consume("]"))
        return fail(L, "bad [mem slot N] annotation");
      I.MemUseSlots.push_back(static_cast<int>(Slot));
    }
    if (!Cur.atEnd())
      return fail(L, "trailing characters after instruction");

    F->block(Block).Instrs.push_back(std::move(I));
    return true;
  }

  /// First body pass: block annotations and succs lists only.
  bool parseAnnotations() {
    BlockId Current = kNoBlock;
    for (unsigned L = First; L < Last; ++L) {
      const std::string &Line = Lines[L];
      if (isBlank(Line))
        continue;
      if (isBlockHeader(Line)) {
        size_t Colon = Line.find(':');
        Current = BlockOf[Line.substr(0, Colon)];
        if (!parseBlockAnnotation(L, Line.substr(Colon + 1), Current))
          return false;
        continue;
      }
      if (Current == kNoBlock)
        return fail(L, "instruction outside any block");
      LineCursor Cur(Line);
      if (Cur.consume(";") && Cur.consume("succs="))
        if (!parseSuccsAnnotation(L, Cur, Current))
          return false;
    }
    return true;
  }

  /// Second body pass: the instructions (the CFG already exists).
  bool parseInstructions() {
    BlockId Current = kNoBlock;
    for (unsigned L = First; L < Last; ++L) {
      const std::string &Line = Lines[L];
      if (isBlank(Line))
        continue;
      if (isBlockHeader(Line)) {
        Current = BlockOf[Line.substr(0, Line.find(':'))];
        continue;
      }
      LineCursor Cur(Line);
      if (Cur.consume(";"))
        continue; // Annotations were handled in the first pass.
      if (!parseInstruction(L, Current))
        return false;
    }
    return true;
  }

  /// Inserts CFG edges reproducing both the preds and the succs orders.
  bool insertEdges() {
    // Consistency: the edge multisets implied by preds and succs match.
    struct EdgeRef {
      BlockId From, To;
      unsigned SuccIdx, PredIdx;
    };
    std::vector<EdgeRef> Edges;
    std::map<std::pair<BlockId, BlockId>, std::vector<unsigned>> BySucc;
    for (auto &[From, List] : Succs)
      for (unsigned Idx = 0; Idx < List.size(); ++Idx) {
        BySucc[{From, List[Idx]}].push_back(
            static_cast<unsigned>(Edges.size()));
        Edges.push_back({From, List[Idx], Idx, 0});
      }
    std::vector<char> Matched(Edges.size(), 0);
    for (auto &[To, List] : Preds)
      for (unsigned Idx = 0; Idx < List.size(); ++Idx) {
        auto It = BySucc.find({List[Idx], To});
        bool Found = false;
        if (It != BySucc.end())
          for (unsigned E : It->second)
            if (!Matched[E]) {
              Matched[E] = 1;
              Edges[E].PredIdx = Idx;
              Found = true;
              break;
            }
        if (!Found)
          return fail(First, "pred list of '" + F->block(To).Name +
                                 "' has no matching succs entry in '" +
                                 F->block(List[Idx]).Name + "'");
      }
    for (unsigned E = 0; E < Edges.size(); ++E)
      if (!Matched[E])
        return fail(First, "succs entry '" + F->block(Edges[E].From).Name +
                               " -> " + F->block(Edges[E].To).Name +
                               "' missing from the target's preds");

    // Kahn's algorithm over edge instances: within one source, succs order;
    // within one target, preds order.
    unsigned N = static_cast<unsigned>(Edges.size());
    std::vector<std::vector<unsigned>> After(N);
    std::vector<unsigned> InDegree(N, 0);
    for (unsigned A = 0; A < N; ++A)
      for (unsigned B = 0; B < N; ++B) {
        if (A == B)
          continue;
        bool Before = (Edges[A].From == Edges[B].From &&
                       Edges[A].SuccIdx + 1 == Edges[B].SuccIdx) ||
                      (Edges[A].To == Edges[B].To &&
                       Edges[A].PredIdx + 1 == Edges[B].PredIdx);
        if (Before) {
          After[A].push_back(B);
          ++InDegree[B];
        }
      }
    std::vector<unsigned> Ready;
    for (unsigned E = 0; E < N; ++E)
      if (InDegree[E] == 0)
        Ready.push_back(E);
    unsigned Inserted = 0;
    while (!Ready.empty()) {
      // Smallest-index choice keeps the construction deterministic.
      auto It = std::min_element(Ready.begin(), Ready.end());
      unsigned E = *It;
      Ready.erase(It);
      F->addEdge(Edges[E].From, Edges[E].To);
      ++Inserted;
      for (unsigned Next : After[E])
        if (--InDegree[Next] == 0)
          Ready.push_back(Next);
    }
    if (Inserted != N)
      return fail(First, "preds/succs orders are mutually inconsistent");
    return true;
  }

  std::vector<std::string> Lines;
  unsigned First = 0, Last = 0;
  std::optional<Function> F;
  std::map<std::string, BlockId> BlockOf;
  std::map<std::string, ValueId> ValueOf;
  std::map<ValueId, RegClassId> ClassOf; // Classes seen at definitions.
  std::map<BlockId, std::vector<BlockId>> Preds, Succs;
  std::string ErrorMessage;
  unsigned ErrorLine = 0;
};

} // namespace

ParsedFunction layra::parseFunction(const std::string &Text) {
  return Parser(Text).run();
}
