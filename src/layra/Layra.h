//===- layra/Layra.h - Public facade -----------------------------*- C++ -*-===//
//
// Part of the Layra project, under the Apache License v2.0.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Umbrella header: one include for everything a downstream user of Layra
/// needs.  Layra reproduces "A Polynomial Spilling Heuristic: Layered
/// Allocation" (Diouf, Cohen, Rastello; CGO 2013): the layered-optimal
/// spilling heuristic for SSA programs, the layered heuristic for general
/// programs, the classical baselines, exact solvers, and a mini compiler IR
/// to derive interference graphs from programs.
///
/// Quick start:
/// \code
///   Function F = ...;                       // build or generate IR
///   SsaConversion Ssa = convertToSsa(F);
///   AllocationProblem P = buildSsaProblem(Ssa.Ssa, ST231, /*R=*/8);
///   AllocationResult Best = layeredAllocate(P, LayeredOptions::bfpl());
///   Assignment Regs = assignRegisters(P, Best.Allocated);
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef LAYRA_LAYRA_H
#define LAYRA_LAYRA_H

#include "alloc/Allocator.h"
#include "alloc/BruteForce.h"
#include "alloc/GraphColoring.h"
#include "alloc/LinearScan.h"
#include "alloc/OptimalBnB.h"
#include "alloc/OptimalInterval.h"
#include "alloc/Pipeline.h"
#include "core/Assignment.h"
#include "core/Coalescing.h"
#include "core/AllocationProblem.h"
#include "core/Layered.h"
#include "core/LayeredHeuristic.h"
#include "core/ProblemBuilder.h"
#include "core/SolverWorkspace.h"
#include "core/StepLayer.h"
#include "driver/BatchDriver.h"
#include "driver/ReportIO.h"
#include "flow/MinCostFlow.h"
#include "graph/Chordal.h"
#include "graph/Coloring.h"
#include "graph/Generators.h"
#include "graph/Graph.h"
#include "graph/StableSet.h"
#include "ir/Dominators.h"
#include "ir/Interference.h"
#include "ir/LiveIntervals.h"
#include "ir/Liveness.h"
#include "ir/OperandFolding.h"
#include "ir/LoopInfo.h"
#include "ir/Parser.h"
#include "ir/Program.h"
#include "ir/ProgramGen.h"
#include "ir/ReloadCleanup.h"
#include "ir/SpillRewriter.h"
#include "ir/SsaBuilder.h"
#include "ir/Target.h"
#include "lp/Ilp.h"
#include "lp/Simplex.h"
#include "suites/Suites.h"

#endif // LAYRA_LAYRA_H
